//! The compiled-kernel cache.
//!
//! Serving the same stencil to many users means compiling once and executing
//! many times. The cache memoises [`PlannedKernel`]s — the generated kernel
//! AST *plus* its simulator execution plan — under a key of
//! (program fingerprint, variant name, bound tunable parameters, device
//! profile), so a second session compiling the same (benchmark, device,
//! config) triple reuses both the stored kernel and its plan instead of
//! re-running codegen or re-planning. Hit/compile counters are exposed so
//! tests — and future perf tracking — can assert cache behaviour.
//!
//! Launch-only parameters (work-group sizes) are deliberately *not* part of
//! the key: they never reach code generation or plan compilation, so every
//! launch shape of one bound program shares a single compiled kernel and
//! plan. This also accelerates tuning, where the tuner sweeps work-group
//! sizes far more often than it changes tunables — a variant is planned
//! once and simulated hundreds of times.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use lift_codegen::Kernel;
use lift_core::expr::FunDecl;
use lift_oclsim::PlannedKernel;

use crate::error::LiftError;

/// The cache key: everything that influences generated code — including
/// the kernel *function name*, which embeds the session's program name, so
/// two sessions that build the same program under different names never
/// share a kernel whose embedded `__kernel` name would be wrong for one of
/// them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the (pre-binding) lowered program.
    pub program: u64,
    /// The generated kernel function name (`<program>_<variant>`).
    pub variant: String,
    /// Bound tunable parameter values, in declaration order.
    pub params: Vec<(String, i64)>,
    /// Device profile name.
    pub device: String,
}

/// Cache counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Kernels actually compiled (cache misses).
    pub compiles: u64,
    /// Lookups served from the cache.
    pub hits: u64,
}

/// A concurrent map from [`CacheKey`] to compiled (and planned) kernels.
#[derive(Debug, Default)]
pub struct KernelCache {
    map: Mutex<HashMap<CacheKey, Arc<PlannedKernel>>>,
    compiles: AtomicU64,
    hits: AtomicU64,
}

impl KernelCache {
    /// An empty cache (use [`KernelCache::global`] to share one per
    /// process).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache every session uses unless it installs its own
    /// via [`crate::DeviceSession::with_cache`].
    pub fn global() -> &'static KernelCache {
        static GLOBAL: OnceLock<KernelCache> = OnceLock::new();
        GLOBAL.get_or_init(KernelCache::new)
    }

    /// Returns the kernel for `key`, compiling it with `compile` on a miss.
    ///
    /// Under the (default) plan engine a miss also compiles the simulator
    /// execution plan eagerly, so every structural fault — including the
    /// plan-level ones (`UnboundVariable`, provable `TypeMismatch`) —
    /// surfaces here, at compile time, with the kernel name and statement
    /// context, rather than mid-simulation. With `LIFT_SIM_ENGINE=tree`
    /// the plan is neither built nor required, keeping the reference
    /// interpreter a genuine escape hatch even for a kernel the plan
    /// compiler would reject.
    ///
    /// Concurrency: compilation runs outside the lock (codegen can be slow
    /// and other keys should not wait on it), so two threads racing on the
    /// same key may both compile. The map is re-checked under the lock
    /// afterwards: exactly one insert wins and is counted in
    /// [`CacheStats::compiles`]; the loser discards its duplicate, counts
    /// as a hit, and — like every later caller — receives the *cached*
    /// `Arc`, so all holders of one key share one kernel and one plan.
    ///
    /// # Errors
    ///
    /// Propagates the compiler's (or plan compiler's) error on a miss; a
    /// failed compilation is not cached.
    pub fn get_or_compile(
        &self,
        key: CacheKey,
        compile: impl FnOnce() -> Result<Kernel, LiftError>,
    ) -> Result<Arc<PlannedKernel>, LiftError> {
        if let Some(hit) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let kernel = Arc::new(PlannedKernel::new(compile()?));
        if lift_oclsim::SimEngine::from_env() == lift_oclsim::SimEngine::Plan {
            kernel.plan()?;
        }
        match self.lock().entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Lost the race: another thread inserted while we compiled.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(e.get().clone())
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                Ok(e.insert(kernel).clone())
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Number of cached kernels.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no kernels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached kernel and resets the counters.
    pub fn clear(&self) {
        self.lock().clear();
        self.compiles.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Arc<PlannedKernel>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A structural fingerprint of a program: FNV-1a over the printed surface
/// form (parameter types and body). The pretty printer writes parameter
/// *names*, not internal ids, so two independently-built copies of the same
/// program fingerprint identically — which is what lets a fresh session hit
/// the cache of an earlier one.
pub fn program_fingerprint(prog: &FunDecl) -> u64 {
    let mut h = Fnv::new();
    if let FunDecl::Lambda(l) = prog {
        for p in &l.params {
            h.write(p.name().as_bytes());
            h.write(b":");
            h.write(p.ty().to_string().as_bytes());
            h.write(b",");
        }
        h.write(l.body.to_string().as_bytes());
    } else {
        h.write(prog.to_string().as_bytes());
    }
    h.finish()
}

/// FNV-1a over one byte string (used for tuner seed derivation too).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = (self.0 ^ *b as u64).wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::prelude::*;

    fn jacobi(n: usize) -> FunDecl {
        lam_named("A", Type::array(Type::f32(), n), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), nbh)
            });
            map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        })
    }

    #[test]
    fn fingerprint_is_stable_across_reconstruction() {
        assert_eq!(
            program_fingerprint(&jacobi(32)),
            program_fingerprint(&jacobi(32))
        );
        assert_ne!(
            program_fingerprint(&jacobi(32)),
            program_fingerprint(&jacobi(64))
        );
    }

    #[test]
    fn second_lookup_hits_without_compiling() {
        let cache = KernelCache::new();
        let key = CacheKey {
            program: 1,
            variant: "global".into(),
            params: vec![("TS0".into(), 4)],
            device: "test".into(),
        };
        let compile = || {
            let prog = lam_named("A", Type::array(Type::f32(), 8), |a| map_glb(0, id(), a));
            lift_codegen::compile_kernel("k", &prog).map_err(Into::into)
        };
        let a = cache
            .get_or_compile(key.clone(), compile)
            .expect("compiles");
        assert_eq!(
            cache.stats(),
            CacheStats {
                compiles: 1,
                hits: 0
            }
        );
        let b = cache
            .get_or_compile(key, || panic!("must not recompile"))
            .expect("hits");
        assert_eq!(
            cache.stats(),
            CacheStats {
                compiles: 1,
                hits: 1
            }
        );
        assert!(Arc::ptr_eq(&a, &b), "the very same kernel is shared");
    }

    #[test]
    fn racing_compiles_count_once_and_share_the_cached_kernel() {
        // N threads demand the same key simultaneously. Some may compile a
        // duplicate, but exactly one insert wins, the counters stay exact
        // (compiles == 1, everything else a hit) and every caller holds
        // the very same Arc — under concurrent tuning a divergent kernel
        // per thread would defeat both the counters and the sharing.
        use std::sync::Barrier;
        const N: usize = 8;
        let cache = KernelCache::new();
        let key = CacheKey {
            program: 3,
            variant: "global".into(),
            params: vec![],
            device: "test".into(),
        };
        let barrier = Barrier::new(N);
        let kernels: Vec<Arc<PlannedKernel>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache
                            .get_or_compile(key.clone(), || {
                                let prog = lam_named("A", Type::array(Type::f32(), 8), |a| {
                                    map_glb(0, id(), a)
                                });
                                lift_codegen::compile_kernel("k", &prog).map_err(Into::into)
                            })
                            .expect("compiles")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = cache.stats();
        assert_eq!(stats.compiles, 1, "only the winning insert is counted");
        assert_eq!(stats.hits, (N - 1) as u64, "losers and late-comers hit");
        assert_eq!(cache.len(), 1);
        for k in &kernels[1..] {
            assert!(
                Arc::ptr_eq(&kernels[0], k),
                "every caller must hold the cached kernel"
            );
        }
    }

    #[test]
    fn distinct_params_are_distinct_entries() {
        let cache = KernelCache::new();
        let mk = |ts| CacheKey {
            program: 9,
            variant: "tiled".into(),
            params: vec![("TS0".into(), ts)],
            device: "test".into(),
        };
        let compile = || {
            let prog = lam_named("A", Type::array(Type::f32(), 8), |a| map_glb(0, id(), a));
            lift_codegen::compile_kernel("k", &prog).map_err(Into::into)
        };
        cache.get_or_compile(mk(4), compile).unwrap();
        cache.get_or_compile(mk(6), compile).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().compiles, 2);
    }
}
