//! Deterministic fault injection for supervision tests (`LIFT_FAULT`).
//!
//! Long-running campaigns must survive workers that crash, hang or corrupt
//! their checkpoints — and the supervisor that provides that survival has
//! to be testable without flaky sleeps or real hardware faults. This seam
//! injects the three failure classes *deterministically*, at well-defined
//! points of the tuning loop, controlled by one environment variable:
//!
//! | `LIFT_FAULT=`                | effect                                       |
//! |------------------------------|----------------------------------------------|
//! | `exit-after:<k>`             | the process exits with [`FAULT_EXIT_CODE`] once `k` tuner tells have been applied (a crash mid-tune) |
//! | `stall` / `stall-after:<k>`  | the tuning thread sleeps forever after `k` tells (a hung worker; only a kill ends it) |
//! | `truncate-checkpoint:<k>`    | the `k`-th checkpoint write (1-based) writes a truncated file *directly over the target* — deliberately bypassing the atomic temp+rename path — and exits (a torn write by a dying machine) |
//!
//! The hooks are threaded through the two layers a real fault would hit:
//! [`after_tells`] fires from the tuning loop (`tune_variant_batched`)
//! after each batch of tells is applied and checkpointed, and
//! [`sabotage_checkpoint_write`] fires from the checkpoint writer. Tells
//! and writes are counted process-wide, so `exit-after:3` means "the third
//! applied tell anywhere in this process" regardless of which variant or
//! sweep cell produced it — exactly reproducible for a fixed seed and
//! budget.
//!
//! An unset or empty `LIFT_FAULT` disables everything (the counters are
//! never even consulted); an unparseable value is reported once on stderr
//! and ignored rather than silently arming a half-understood fault.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// The exit code of a process killed by an injected `exit-after` or
/// `truncate-checkpoint` fault — distinct from every real exit code the
/// harness uses, so a supervisor (or a test) can tell an injected crash
/// from a genuine failure.
pub const FAULT_EXIT_CODE: i32 = 86;

/// One parsed fault plan (see the module docs for the syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultPlan {
    /// Exit with [`FAULT_EXIT_CODE`] once this many tells were applied.
    ExitAfterTells(u64),
    /// Sleep forever once this many tells were applied.
    StallAfterTells(u64),
    /// Truncate the n-th checkpoint write (1-based) and exit.
    TruncateCheckpointWrite(u64),
}

/// Parses a `LIFT_FAULT` plan string.
pub(crate) fn parse_plan(s: &str) -> Result<FaultPlan, String> {
    let (kind, arg) = match s.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (s, None),
    };
    let count = |arg: Option<&str>, default: u64| -> Result<u64, String> {
        match arg {
            None => Ok(default),
            Some(a) => a
                .parse::<u64>()
                .map_err(|_| format!("`{a}` is not a non-negative integer")),
        }
    };
    match kind {
        "exit-after" => Ok(FaultPlan::ExitAfterTells(count(arg, 0)?)),
        "stall" | "stall-after" => Ok(FaultPlan::StallAfterTells(count(arg, 0)?)),
        "truncate-checkpoint" => {
            let k = count(arg, 1)?;
            if k == 0 {
                return Err("truncate-checkpoint counts writes from 1".into());
            }
            Ok(FaultPlan::TruncateCheckpointWrite(k))
        }
        other => Err(format!(
            "unknown fault `{other}`; use exit-after:<k>, stall[-after:<k>] or \
             truncate-checkpoint:<k>"
        )),
    }
}

/// The plan armed for this process, resolved from `LIFT_FAULT` exactly
/// once. `None` when the variable is unset, empty, or unparseable (the
/// latter is reported on stderr — junk must not arm a surprise fault).
fn active() -> Option<FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    *PLAN.get_or_init(|| {
        let raw = std::env::var("LIFT_FAULT").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        match parse_plan(raw) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("lift-driver: ignoring invalid LIFT_FAULT `{raw}`: {e}");
                None
            }
        }
    })
}

/// Process-wide applied-tell counter (only advanced while a plan is armed).
static TELLS: AtomicU64 = AtomicU64::new(0);
/// Process-wide checkpoint-write counter (ditto).
static CHECKPOINT_WRITES: AtomicU64 = AtomicU64::new(0);
/// A stall fires once; racing tuner threads must not all announce it.
static STALLED: AtomicBool = AtomicBool::new(false);

/// Tuning-loop hook: `applied` more tells were just applied (and, when
/// checkpointing is on, recorded). Fires `exit-after` / `stall` plans.
pub(crate) fn after_tells(applied: usize) {
    let Some(plan) = active() else { return };
    let total = TELLS.fetch_add(applied as u64, Ordering::SeqCst) + applied as u64;
    match plan {
        FaultPlan::ExitAfterTells(k) if total >= k => {
            eprintln!("lift-driver: injected fault: exiting after {total} applied tells");
            std::process::exit(FAULT_EXIT_CODE);
        }
        FaultPlan::StallAfterTells(k) if total >= k => {
            if !STALLED.swap(true, Ordering::SeqCst) {
                eprintln!("lift-driver: injected fault: stalling after {total} applied tells");
            }
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        _ => {}
    }
}

/// Checkpoint-writer hook, called with the fully-rendered document just
/// before the atomic temp+rename write. When a `truncate-checkpoint` plan
/// targets this write, the first half of the document is written *directly
/// over* `path` — a torn write no atomic rename can produce on its own —
/// and the process exits; otherwise this is a no-op and the caller
/// proceeds with the normal atomic write.
pub(crate) fn sabotage_checkpoint_write(path: &Path, rendered: &str) {
    let Some(FaultPlan::TruncateCheckpointWrite(k)) = active() else {
        return;
    };
    let n = CHECKPOINT_WRITES.fetch_add(1, Ordering::SeqCst) + 1;
    if n == k {
        let cut = rendered.len() / 2;
        let _ = std::fs::write(path, &rendered.as_bytes()[..cut]);
        eprintln!(
            "lift-driver: injected fault: truncated checkpoint write {n} over {}",
            path.display()
        );
        std::process::exit(FAULT_EXIT_CODE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_reject_junk() {
        assert_eq!(parse_plan("exit-after:3"), Ok(FaultPlan::ExitAfterTells(3)));
        assert_eq!(parse_plan("exit-after"), Ok(FaultPlan::ExitAfterTells(0)));
        assert_eq!(parse_plan("stall"), Ok(FaultPlan::StallAfterTells(0)));
        assert_eq!(
            parse_plan("stall-after:7"),
            Ok(FaultPlan::StallAfterTells(7))
        );
        assert_eq!(
            parse_plan("truncate-checkpoint"),
            Ok(FaultPlan::TruncateCheckpointWrite(1))
        );
        assert_eq!(
            parse_plan("truncate-checkpoint:2"),
            Ok(FaultPlan::TruncateCheckpointWrite(2))
        );
        assert!(parse_plan("truncate-checkpoint:0").is_err());
        assert!(parse_plan("exit-after:x").is_err());
        assert!(parse_plan("segfault").is_err());
        assert!(parse_plan("stall-after:-1").is_err());
    }
}
