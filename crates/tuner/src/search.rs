//! The batched ask/tell search engine.
//!
//! [`Search`] is the tuner's core restructured for parallel drivers: instead
//! of calling back into an evaluator, it *proposes* batches of
//! configurations ([`Search::ask`]) and *consumes* their scores
//! ([`Search::tell`]). The driver is free to evaluate a whole batch
//! concurrently — the engine guarantees the outcome is **bit-identical to
//! the sequential search** for the same seed, regardless of batch size or
//! thread count:
//!
//! * proposals are drawn from the deterministic RNG stream in a fixed
//!   order, independent of any score;
//! * tells are buffered and applied in **proposal order**, so the trace and
//!   the evaluation counter never depend on evaluation timing;
//! * ties are broken by (score, proposal index): the earliest proposal with
//!   the minimal score wins.
//!
//! The search runs in *blocks* whose proposals never depend on scores
//! produced inside the same block: the exhaustive enumeration is one block,
//! the random-sampling phase is one block, and each greedy-refinement pass
//! around the incumbent is one block. `ask` hands out the current block and
//! returns an empty batch while tells for it are still outstanding; once
//! the block is fully told the next block is derived from the (now
//! deterministic) incumbent.
//!
//! ```
//! use lift_tuner::{ParamSpace, ParamSpec, Search};
//!
//! let space = ParamSpace::new([ParamSpec::new("x", (1..=100).collect::<Vec<_>>())]);
//! let mut search = Search::new(space, 20, 7);
//! while !search.is_done() {
//!     let batch = search.ask(4); // evaluate these 4 in parallel if you like
//!     for cfg in batch {
//!         let score = (cfg[0] as f64 - 42.0).abs();
//!         search.tell(&cfg, Some(score));
//!     }
//! }
//! let result = search.into_result();
//! assert!(result.best.is_some());
//! ```

use std::collections::{HashSet, VecDeque};

use crate::rng::SplitMix64;
use crate::{Candidate, ParamSpace, TuneResult};

/// Which deterministic proposal block the search is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The space fits the budget: one block enumerating every satisfying
    /// configuration.
    Exhaustive,
    /// Seeded random sampling (first ~3/4 of the budget).
    Sampling,
    /// One greedy-refinement pass around the incumbent per block.
    Refining,
    /// No further proposals will be made.
    Done,
}

/// A proposal that has been handed out by [`Search::ask`] and is awaiting
/// (or buffering) its [`Search::tell`].
#[derive(Debug)]
struct Outstanding {
    cfg: Vec<i64>,
    /// `None` until told; `Some(score)` afterwards (`score` itself is
    /// `None` for failed evaluations).
    result: Option<Option<f64>>,
}

/// A batched ask/tell search over a [`ParamSpace`] with a fixed evaluation
/// budget. See the [module docs](self) for the contract.
pub struct Search {
    space: ParamSpace,
    budget: usize,
    phase: Phase,
    rng: SplitMix64,
    seen: HashSet<Vec<i64>>,
    /// Proposals of the current block not yet handed out by `ask`.
    pending: VecDeque<Vec<i64>>,
    /// Proposals handed out, in proposal order, awaiting tells.
    outstanding: VecDeque<Outstanding>,
    /// Budget consumed at proposal time (each proposal costs exactly one
    /// evaluation once told).
    proposed: usize,
    /// Tells applied so far (== `proposed` at every block boundary).
    evaluations: usize,
    trace: Vec<Candidate>,
    best: Option<Candidate>,
    /// The incumbent's score when the current refinement pass was proposed
    /// (`None` = no incumbent yet); used to decide whether the pass
    /// improved anything.
    pass_start_score: Option<f64>,
}

impl Search {
    /// Creates a search over `space` with an evaluation `budget` and a
    /// deterministic `seed`.
    pub fn new(space: ParamSpace, budget: usize, seed: u64) -> Self {
        let mut s = Search {
            rng: SplitMix64::new(seed),
            space,
            budget,
            phase: Phase::Done,
            seen: HashSet::new(),
            pending: VecDeque::new(),
            outstanding: VecDeque::new(),
            proposed: 0,
            evaluations: 0,
            trace: Vec::new(),
            best: None,
            pass_start_score: None,
        };
        if s.space.cardinality() <= s.budget {
            s.phase = Phase::Exhaustive;
            for i in 0..s.space.cardinality() {
                let cfg = s.space.nth(i);
                if s.space.satisfies(&cfg) {
                    s.pending.push_back(cfg);
                    s.proposed += 1;
                }
            }
        } else {
            s.phase = Phase::Sampling;
            let sample_budget = (s.budget * 3) / 4;
            let mut attempts = 0;
            while s.proposed < sample_budget && attempts < s.budget * 20 {
                attempts += 1;
                let idx = s.rng.gen_range(s.space.cardinality());
                let cfg = s.space.nth(idx);
                if !s.space.satisfies(&cfg) || !s.seen.insert(cfg.clone()) {
                    continue;
                }
                s.pending.push_back(cfg);
                s.proposed += 1;
            }
        }
        s
    }

    /// The underlying space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Proposes up to `n` configurations to evaluate next.
    ///
    /// Returns an empty batch when (a) the search is finished — check
    /// [`Search::is_done`] — or (b) the current block is exhausted but some
    /// of its proposals have not been told yet; tell them and ask again.
    pub fn ask(&mut self, n: usize) -> Vec<Vec<i64>> {
        if self.pending.is_empty() && self.outstanding.is_empty() {
            self.next_block();
        }
        let take = n.min(self.pending.len());
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            let cfg = self.pending.pop_front().expect("len checked");
            self.outstanding.push_back(Outstanding {
                cfg: cfg.clone(),
                result: None,
            });
            batch.push(cfg);
        }
        batch
    }

    /// Reports the score of an asked configuration (`None` = the
    /// configuration failed to compile, run or validate). Tells may arrive
    /// in any order; they are applied in proposal order.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` was never asked (or already told).
    pub fn tell(&mut self, cfg: &[i64], score: Option<f64>) {
        let slot = self
            .outstanding
            .iter_mut()
            .find(|o| o.result.is_none() && o.cfg == cfg)
            .unwrap_or_else(|| panic!("tell for a configuration that was not asked: {cfg:?}"));
        slot.result = Some(score);
        // Apply the completed prefix in proposal order.
        while self.outstanding.front().is_some_and(|o| o.result.is_some()) {
            let o = self.outstanding.pop_front().expect("front checked");
            self.apply(o.cfg, o.result.expect("result checked"));
        }
    }

    /// Whether the search has finished: no proposals left and every tell
    /// applied.
    pub fn is_done(&mut self) -> bool {
        if self.pending.is_empty() && self.outstanding.is_empty() {
            self.next_block();
        }
        self.phase == Phase::Done && self.pending.is_empty() && self.outstanding.is_empty()
    }

    /// Evaluations applied so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The incumbent, if any evaluation succeeded yet.
    pub fn best(&self) -> Option<&Candidate> {
        self.best.as_ref()
    }

    /// Finishes the search, returning the same [`TuneResult`] the
    /// sequential [`crate::Tuner::run`] would produce.
    pub fn into_result(self) -> TuneResult {
        TuneResult {
            best: self.best,
            evaluations: self.evaluations,
            trace: self.trace,
        }
    }

    /// Applies one told proposal: counts it, records the trace entry and
    /// updates the incumbent (strict improvement, so the earliest proposal
    /// with the minimal score wins — the (score, proposal index)
    /// tie-break).
    fn apply(&mut self, values: Vec<i64>, score: Option<f64>) {
        self.evaluations += 1;
        if let Some(score) = score {
            let cand = Candidate { values, score };
            if self.best.as_ref().is_none_or(|b| cand.score < b.score) {
                self.best = Some(cand.clone());
            }
            self.trace.push(cand);
        }
    }

    /// Derives the next proposal block once the current one is fully told.
    fn next_block(&mut self) {
        debug_assert!(self.pending.is_empty() && self.outstanding.is_empty());
        match self.phase {
            Phase::Done => {}
            Phase::Exhaustive => self.phase = Phase::Done,
            Phase::Sampling => self.start_refinement_pass(),
            Phase::Refining => {
                // The sequential loop repeats only while a pass improved
                // the incumbent.
                let improved = match (self.pass_start_score, self.best.as_ref()) {
                    (None, Some(_)) => true,
                    (Some(before), Some(b)) => b.score < before,
                    (_, None) => false,
                };
                if improved {
                    self.start_refinement_pass();
                } else {
                    self.phase = Phase::Done;
                }
            }
        }
    }

    /// Proposes one greedy pass around the incumbent: each parameter moved
    /// one candidate up/down, budget permitting. Mirrors the sequential
    /// refinement loop exactly.
    fn start_refinement_pass(&mut self) {
        if self.proposed >= self.budget {
            self.phase = Phase::Done;
            return;
        }
        let Some(incumbent) = self.best.clone() else {
            self.phase = Phase::Done;
            return;
        };
        self.pass_start_score = Some(incumbent.score);
        'outer: for (pi, p) in self.space.params().iter().enumerate() {
            let cur_pos = p
                .candidates()
                .iter()
                .position(|v| *v == incumbent.values[pi])
                .unwrap_or(0);
            for np in [cur_pos.wrapping_sub(1), cur_pos + 1] {
                if self.proposed >= self.budget {
                    break 'outer;
                }
                let Some(v) = p.candidates().get(np) else {
                    continue;
                };
                let mut cfg = incumbent.values.clone();
                cfg[pi] = *v;
                if !self.space.satisfies(&cfg) || !self.seen.insert(cfg.clone()) {
                    continue;
                }
                self.pending.push_back(cfg);
                self.proposed += 1;
            }
        }
        self.phase = if self.pending.is_empty() {
            // Nothing left to try around the incumbent: the sequential
            // loop's `improved` flag would stay false.
            Phase::Done
        } else {
            Phase::Refining
        };
    }
}
