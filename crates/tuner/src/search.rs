//! The batched ask/tell search engine.
//!
//! [`Search`] is the tuner's core restructured for parallel drivers: instead
//! of calling back into an evaluator, it *proposes* batches of
//! configurations ([`Search::ask`]) and *consumes* their scores
//! ([`Search::tell`]). The driver is free to evaluate a whole batch
//! concurrently — the engine guarantees the outcome is **bit-identical to
//! the sequential search** for the same seed, regardless of batch size or
//! thread count:
//!
//! * proposals are drawn from the deterministic RNG stream in a fixed
//!   order, independent of any score;
//! * tells are buffered and applied in **proposal order**, so the trace and
//!   the evaluation counter never depend on evaluation timing;
//! * ties are broken by (score, proposal index): the earliest proposal with
//!   the minimal score wins.
//!
//! The search runs in *blocks* whose proposals never depend on scores
//! produced inside the same block: the exhaustive enumeration is one block,
//! the random-sampling phase is one block, and each greedy-refinement pass
//! around the incumbent is one block. `ask` hands out the current block and
//! returns an empty batch while tells for it are still outstanding; once
//! the block is fully told the next block is derived from the (now
//! deterministic) incumbent.
//!
//! ```
//! use lift_tuner::{ParamSpace, ParamSpec, Search};
//!
//! let space = ParamSpace::new([ParamSpec::new("x", (1..=100).collect::<Vec<_>>())]);
//! let mut search = Search::new(space, 20, 7);
//! while !search.is_done() {
//!     let batch = search.ask(4); // evaluate these 4 in parallel if you like
//!     for cfg in batch {
//!         let score = (cfg[0] as f64 - 42.0).abs();
//!         search.tell(&cfg, Some(score));
//!     }
//! }
//! let result = search.into_result();
//! assert!(result.best.is_some());
//! ```

use std::collections::{HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use crate::json::Value;
use crate::rng::SplitMix64;
use crate::{Candidate, ParamSpace, TuneResult};

/// Which deterministic proposal block the search is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The space fits the budget: one block enumerating every satisfying
    /// configuration.
    Exhaustive,
    /// Seeded random sampling (first ~3/4 of the budget).
    Sampling,
    /// One greedy-refinement pass around the incumbent per block.
    Refining,
    /// No further proposals will be made.
    Done,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Exhaustive => "exhaustive",
            Phase::Sampling => "sampling",
            Phase::Refining => "refining",
            Phase::Done => "done",
        }
    }

    fn from_str(s: &str) -> Option<Phase> {
        Some(match s {
            "exhaustive" => Phase::Exhaustive,
            "sampling" => Phase::Sampling,
            "refining" => Phase::Refining,
            "done" => Phase::Done,
            _ => return None,
        })
    }
}

/// A proposal that has been handed out by [`Search::ask`] and is awaiting
/// (or buffering) its [`Search::tell`].
#[derive(Debug)]
struct Outstanding {
    cfg: Vec<i64>,
    /// `None` until told; `Some(score)` afterwards (`score` itself is
    /// `None` for failed evaluations).
    result: Option<Option<f64>>,
}

/// A batched ask/tell search over a [`ParamSpace`] with a fixed evaluation
/// budget. See the [module docs](self) for the contract.
pub struct Search {
    space: ParamSpace,
    budget: usize,
    seed: u64,
    phase: Phase,
    rng: SplitMix64,
    seen: HashSet<Vec<i64>>,
    /// Proposals of the current block not yet handed out by `ask`.
    pending: VecDeque<Vec<i64>>,
    /// Proposals handed out, in proposal order, awaiting tells.
    outstanding: VecDeque<Outstanding>,
    /// Budget consumed at proposal time (each proposal costs exactly one
    /// evaluation once told).
    proposed: usize,
    /// Tells applied so far (== `proposed` at every block boundary).
    evaluations: usize,
    trace: Vec<Candidate>,
    best: Option<Candidate>,
    /// The incumbent's score when the current refinement pass was proposed
    /// (`None` = no incumbent yet); used to decide whether the pass
    /// improved anything.
    pass_start_score: Option<f64>,
}

impl Search {
    /// Creates a search over `space` with an evaluation `budget` and a
    /// deterministic `seed`.
    pub fn new(space: ParamSpace, budget: usize, seed: u64) -> Self {
        let mut s = Search {
            rng: SplitMix64::new(seed),
            space,
            budget,
            seed,
            phase: Phase::Done,
            seen: HashSet::new(),
            pending: VecDeque::new(),
            outstanding: VecDeque::new(),
            proposed: 0,
            evaluations: 0,
            trace: Vec::new(),
            best: None,
            pass_start_score: None,
        };
        if s.space.cardinality() <= s.budget {
            s.phase = Phase::Exhaustive;
            for i in 0..s.space.cardinality() {
                let cfg = s.space.nth(i);
                if s.space.satisfies(&cfg) {
                    s.pending.push_back(cfg);
                    s.proposed += 1;
                }
            }
        } else {
            s.phase = Phase::Sampling;
            let sample_budget = (s.budget * 3) / 4;
            let mut attempts = 0;
            while s.proposed < sample_budget && attempts < s.budget * 20 {
                attempts += 1;
                let idx = s.rng.gen_range(s.space.cardinality());
                let cfg = s.space.nth(idx);
                if !s.space.satisfies(&cfg) || !s.seen.insert(cfg.clone()) {
                    continue;
                }
                s.pending.push_back(cfg);
                s.proposed += 1;
            }
        }
        s
    }

    /// The underlying space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Reorders the initial proposal block so the most promising
    /// configurations (lowest `rank` value) are asked first — a
    /// model-ranked warm-start. Configurations the ranker cannot score
    /// (`None`) sort after every ranked one. The sort is stable on
    /// (rank, original proposal position), so a *pure* ranker keeps the
    /// reordering deterministic, and rank ties preserve the original
    /// proposal order — the (score, proposal index) incumbent tie-break
    /// still resolves the same way whenever tied proposals tie in rank.
    ///
    /// Only the not-yet-asked proposals of the first block are reordered:
    /// the call is a no-op once any proposal has been handed out or told
    /// (in particular on a search restored mid-run from a snapshot, whose
    /// recorded proposal order must be preserved for resume determinism —
    /// a snapshot taken *after* warm-starting records the reordered queue,
    /// so resumed and uninterrupted warm-started runs still agree).
    pub fn warm_start_by<F>(&mut self, mut rank: F)
    where
        F: FnMut(&[i64]) -> Option<f64>,
    {
        if self.evaluations > 0 || !self.outstanding.is_empty() {
            return;
        }
        let mut items: Vec<(Option<f64>, usize, Vec<i64>)> = self
            .pending
            .drain(..)
            .enumerate()
            .map(|(i, cfg)| (rank(&cfg), i, cfg))
            .collect();
        items.sort_by(|a, b| match (a.0, b.0) {
            (Some(x), Some(y)) => x.total_cmp(&y).then(a.1.cmp(&b.1)),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.1.cmp(&b.1),
        });
        self.pending = items.into_iter().map(|(_, _, cfg)| cfg).collect();
    }

    /// Proposes up to `n` configurations to evaluate next.
    ///
    /// Returns an empty batch when (a) the search is finished — check
    /// [`Search::is_done`] — or (b) the current block is exhausted but some
    /// of its proposals have not been told yet; tell them and ask again.
    pub fn ask(&mut self, n: usize) -> Vec<Vec<i64>> {
        if self.pending.is_empty() && self.outstanding.is_empty() {
            self.next_block();
        }
        let take = n.min(self.pending.len());
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            let cfg = self.pending.pop_front().expect("len checked");
            self.outstanding.push_back(Outstanding {
                cfg: cfg.clone(),
                result: None,
            });
            batch.push(cfg);
        }
        batch
    }

    /// Reports the score of an asked configuration (`None` = the
    /// configuration failed to compile, run or validate). Tells may arrive
    /// in any order; they are applied in proposal order.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` was never asked (or already told).
    pub fn tell(&mut self, cfg: &[i64], score: Option<f64>) {
        let slot = self
            .outstanding
            .iter_mut()
            .find(|o| o.result.is_none() && o.cfg == cfg)
            .unwrap_or_else(|| panic!("tell for a configuration that was not asked: {cfg:?}"));
        slot.result = Some(score);
        // Apply the completed prefix in proposal order.
        while self.outstanding.front().is_some_and(|o| o.result.is_some()) {
            let o = self.outstanding.pop_front().expect("front checked");
            self.apply(o.cfg, o.result.expect("result checked"));
        }
    }

    /// Whether the search has finished: no proposals left and every tell
    /// applied.
    pub fn is_done(&mut self) -> bool {
        if self.pending.is_empty() && self.outstanding.is_empty() {
            self.next_block();
        }
        self.phase == Phase::Done && self.pending.is_empty() && self.outstanding.is_empty()
    }

    /// Evaluations applied so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The incumbent, if any evaluation succeeded yet.
    pub fn best(&self) -> Option<&Candidate> {
        self.best.as_ref()
    }

    /// Finishes the search, returning the same [`TuneResult`] the
    /// sequential [`crate::Tuner::run`] would produce.
    pub fn into_result(self) -> TuneResult {
        TuneResult {
            best: self.best,
            evaluations: self.evaluations,
            trace: self.trace,
        }
    }

    /// Applies one told proposal: counts it, records the trace entry and
    /// updates the incumbent (strict improvement, so the earliest proposal
    /// with the minimal score wins — the (score, proposal index)
    /// tie-break).
    fn apply(&mut self, values: Vec<i64>, score: Option<f64>) {
        self.evaluations += 1;
        if let Some(score) = score {
            let cand = Candidate { values, score };
            if self.best.as_ref().is_none_or(|b| cand.score < b.score) {
                self.best = Some(cand.clone());
            }
            self.trace.push(cand);
        }
    }

    /// Derives the next proposal block once the current one is fully told.
    fn next_block(&mut self) {
        debug_assert!(self.pending.is_empty() && self.outstanding.is_empty());
        match self.phase {
            Phase::Done => {}
            Phase::Exhaustive => self.phase = Phase::Done,
            Phase::Sampling => self.start_refinement_pass(),
            Phase::Refining => {
                // The sequential loop repeats only while a pass improved
                // the incumbent.
                let improved = match (self.pass_start_score, self.best.as_ref()) {
                    (None, Some(_)) => true,
                    (Some(before), Some(b)) => b.score < before,
                    (_, None) => false,
                };
                if improved {
                    self.start_refinement_pass();
                } else {
                    self.phase = Phase::Done;
                }
            }
        }
    }

    /// Proposes one greedy pass around the incumbent: each parameter moved
    /// one candidate up/down, budget permitting. Mirrors the sequential
    /// refinement loop exactly.
    fn start_refinement_pass(&mut self) {
        if self.proposed >= self.budget {
            self.phase = Phase::Done;
            return;
        }
        let Some(incumbent) = self.best.clone() else {
            self.phase = Phase::Done;
            return;
        };
        self.pass_start_score = Some(incumbent.score);
        'outer: for (pi, p) in self.space.params().iter().enumerate() {
            let cur_pos = p
                .candidates()
                .iter()
                .position(|v| *v == incumbent.values[pi])
                .unwrap_or(0);
            for np in [cur_pos.wrapping_sub(1), cur_pos + 1] {
                if self.proposed >= self.budget {
                    break 'outer;
                }
                let Some(v) = p.candidates().get(np) else {
                    continue;
                };
                let mut cfg = incumbent.values.clone();
                cfg[pi] = *v;
                if !self.space.satisfies(&cfg) || !self.seen.insert(cfg.clone()) {
                    continue;
                }
                self.pending.push_back(cfg);
                self.proposed += 1;
            }
        }
        self.phase = if self.pending.is_empty() {
            // Nothing left to try around the incumbent: the sequential
            // loop's `improved` flag would stay false.
            Phase::Done
        } else {
            Phase::Refining
        };
    }

    /// Captures the search as a serializable [`SearchState`].
    ///
    /// The snapshot is taken *as of the last applied tell*: proposals that
    /// have been handed out by [`Search::ask`] but whose tells have not
    /// been applied yet are rolled back into the pending queue (in
    /// proposal order), and buffered out-of-order tells are discarded.
    /// With a deterministic evaluator this is invisible — the restored
    /// search re-proposes those configurations and receives the same
    /// scores — and it is exactly the right semantics for crash recovery,
    /// where in-flight evaluations died with the process.
    ///
    /// The guarantee tested in this crate: for any interleaving of `ask`,
    /// `tell`, `snapshot` and [`Search::restore`], the restored search
    /// driven by the same deterministic evaluator finishes with a
    /// [`TuneResult`] bit-identical to the uninterrupted run's.
    pub fn snapshot(&self) -> SearchState {
        let mut pending: Vec<Vec<i64>> = self.outstanding.iter().map(|o| o.cfg.clone()).collect();
        pending.extend(self.pending.iter().cloned());
        let mut seen: Vec<Vec<i64>> = self.seen.iter().cloned().collect();
        seen.sort_unstable(); // HashSet order is unstable; keep files tidy
        SearchState {
            seed: self.seed,
            budget: self.budget,
            space_digest: space_digest(&self.space),
            rng_state: self.rng.state(),
            phase: self.phase.as_str().to_string(),
            proposed: self.proposed,
            evaluations: self.evaluations,
            pending,
            seen,
            trace: self.trace.clone(),
            best: self.best.clone(),
            pass_start_score: self.pass_start_score,
        }
    }

    /// Rebuilds a search from a [`SearchState`] over a freshly constructed
    /// `space` (parameter spaces carry constraint closures and cannot be
    /// serialized themselves).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when `space` does not match the space the
    /// snapshot was taken over (parameter names or candidate lists
    /// differ), or when the state is internally inconsistent (an unknown
    /// phase name).
    pub fn restore(space: ParamSpace, state: SearchState) -> Result<Search, SnapshotError> {
        let digest = space_digest(&space);
        if digest != state.space_digest {
            return Err(SnapshotError(format!(
                "snapshot was taken over a different parameter space \
                 (digest {:#x}, this space is {:#x}); checkpoints cannot \
                 be shared across programs, variants or devices",
                state.space_digest, digest
            )));
        }
        let phase = Phase::from_str(&state.phase)
            .ok_or_else(|| SnapshotError(format!("unknown search phase `{}`", state.phase)))?;
        // The digest proves the snapshot was taken over this space's
        // *shape*, but a bit-rotted or hand-edited file can still carry
        // truncated configuration vectors under a matching digest — catch
        // that here instead of panicking deep inside a refinement pass.
        let arity = space.params().len();
        let bad_arity = state
            .pending
            .iter()
            .chain(state.seen.iter())
            .chain(state.trace.iter().map(|c| &c.values))
            .chain(state.best.iter().map(|c| &c.values))
            .any(|cfg| cfg.len() != arity);
        if bad_arity {
            return Err(SnapshotError(format!(
                "snapshot contains a configuration whose arity differs from the space's \
                 {arity} parameters; the checkpoint file is corrupt"
            )));
        }
        Ok(Search {
            rng: SplitMix64::new(state.rng_state),
            space,
            budget: state.budget,
            seed: state.seed,
            phase,
            seen: state.seen.into_iter().collect(),
            pending: state.pending.into(),
            outstanding: VecDeque::new(),
            proposed: state.proposed,
            evaluations: state.evaluations,
            trace: state.trace,
            best: state.best,
            pass_start_score: state.pass_start_score,
        })
    }
}

/// Digest of a parameter space's *shape* (names and candidate lists, in
/// declaration order; constraints are closures and cannot participate).
/// Stored in every snapshot so a checkpoint recorded for one (program,
/// variant, device) cannot silently resume another.
fn space_digest(space: &ParamSpace) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in space.params() {
        eat(p.name().as_bytes());
        eat(&[0xff]);
        for c in p.candidates() {
            eat(&c.to_le_bytes());
        }
        eat(&[0xfe]);
    }
    h
}

/// A failure to snapshot, parse or restore a [`SearchState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "search snapshot error: {}", self.0)
    }
}

impl Error for SnapshotError {}

/// The version written into (and required from) every serialized
/// [`SearchState`].
pub const SEARCH_STATE_SCHEMA_VERSION: u64 = 1;

/// A serializable snapshot of a [`Search`], produced by
/// [`Search::snapshot`] and consumed by [`Search::restore`].
///
/// # JSON schema (version 1)
///
/// [`SearchState::to_json`] writes one JSON object; all fields are
/// required. [`SearchState::from_json`] rejects a missing or different
/// `schema_version` with a [`SnapshotError`] naming both versions — a
/// checkpoint written by a future incompatible release fails loudly
/// instead of resuming garbage.
///
/// ```json
/// {
///   "schema_version": 1,         // this layout; checked on parse
///   "seed": 2018,                // the seed the search was created with
///   "budget": 10,                // total evaluation budget
///   "space_digest": 123456,      // u64 digest of the parameter space shape
///   "rng_state": 987654,         // SplitMix64 stream position (u64)
///   "phase": "sampling",         // exhaustive | sampling | refining | done
///   "proposed": 30,              // proposals drawn so far (budget spent)
///   "tells_applied": 12,         // tells applied so far (== evaluations())
///   "pending": [[1, 2], ...],    // proposals not yet evaluated, in order
///   "seen": [[1, 2], ...],       // configurations ever proposed (sorted)
///   "trace": [                   // applied successful evaluations, in order
///     {"values": [1, 2], "score": 0.5}, ...
///   ],
///   "best": {"values": [1, 2], "score": 0.5},   // or null
///   "pass_start_score": null     // incumbent score when the current
/// }                              // refinement pass started, or null
/// ```
///
/// Integers are written as JSON integers (never through `f64` — the RNG
/// state uses all 64 bits) and scores with Rust's shortest round-tripping
/// float format, so a parse of the written form reproduces every field
/// bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// Seed the original search was created with.
    pub seed: u64,
    /// Total evaluation budget.
    pub budget: usize,
    /// Digest of the parameter space shape (see [`Search::restore`]).
    pub space_digest: u64,
    /// SplitMix64 stream position.
    pub rng_state: u64,
    /// Proposal phase (`"exhaustive"`, `"sampling"`, `"refining"`,
    /// `"done"`).
    pub phase: String,
    /// Proposals drawn so far.
    pub proposed: usize,
    /// Tells applied so far.
    pub evaluations: usize,
    /// Proposals awaiting evaluation, in proposal order (includes any
    /// that were in flight when the snapshot was taken).
    pub pending: Vec<Vec<i64>>,
    /// Every configuration ever proposed (deduplication set), sorted.
    pub seen: Vec<Vec<i64>>,
    /// Applied successful evaluations, in proposal order.
    pub trace: Vec<Candidate>,
    /// The incumbent, if any evaluation succeeded yet.
    pub best: Option<Candidate>,
    /// The incumbent's score when the current refinement pass started.
    pub pass_start_score: Option<f64>,
}

fn cfg_to_json(cfg: &[i64]) -> Value {
    Value::Arr(cfg.iter().map(|v| Value::Int(*v)).collect())
}

fn cfg_from_json(v: &Value) -> Result<Vec<i64>, SnapshotError> {
    v.as_arr()
        .ok_or_else(|| SnapshotError("configuration is not an array".into()))?
        .iter()
        .map(|x| {
            x.as_i64()
                .ok_or_else(|| SnapshotError("configuration value is not an integer".into()))
        })
        .collect()
}

fn candidate_to_json(c: &Candidate) -> Value {
    Value::Obj(vec![
        ("values".into(), cfg_to_json(&c.values)),
        ("score".into(), Value::Float(c.score)),
    ])
}

fn candidate_from_json(v: &Value) -> Result<Candidate, SnapshotError> {
    let values = cfg_from_json(
        v.get("values")
            .ok_or_else(|| SnapshotError("candidate has no `values`".into()))?,
    )?;
    let score = v
        .get("score")
        .and_then(Value::as_f64)
        .ok_or_else(|| SnapshotError("candidate has no numeric `score`".into()))?;
    Ok(Candidate { values, score })
}

impl SearchState {
    /// Serializes the state as a JSON object (schema above).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "schema_version".into(),
                Value::UInt(SEARCH_STATE_SCHEMA_VERSION),
            ),
            ("seed".into(), Value::UInt(self.seed)),
            ("budget".into(), Value::UInt(self.budget as u64)),
            ("space_digest".into(), Value::UInt(self.space_digest)),
            ("rng_state".into(), Value::UInt(self.rng_state)),
            ("phase".into(), Value::Str(self.phase.clone())),
            ("proposed".into(), Value::UInt(self.proposed as u64)),
            ("tells_applied".into(), Value::UInt(self.evaluations as u64)),
            (
                "pending".into(),
                Value::Arr(self.pending.iter().map(|c| cfg_to_json(c)).collect()),
            ),
            (
                "seen".into(),
                Value::Arr(self.seen.iter().map(|c| cfg_to_json(c)).collect()),
            ),
            (
                "trace".into(),
                Value::Arr(self.trace.iter().map(candidate_to_json).collect()),
            ),
            (
                "best".into(),
                self.best
                    .as_ref()
                    .map(candidate_to_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "pass_start_score".into(),
                self.pass_start_score
                    .map(Value::Float)
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// Deserializes a state from the JSON written by
    /// [`SearchState::to_json`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on a missing or mismatched `schema_version`
    /// (naming both the expected and the found version) or any missing or
    /// ill-typed field.
    pub fn from_json(v: &Value) -> Result<SearchState, SnapshotError> {
        let version = v.get("schema_version").and_then(Value::as_u64);
        if version != Some(SEARCH_STATE_SCHEMA_VERSION) {
            return Err(SnapshotError(format!(
                "unsupported checkpoint schema_version {} (this build reads version {})",
                version.map_or("<missing>".to_string(), |x| x.to_string()),
                SEARCH_STATE_SCHEMA_VERSION
            )));
        }
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| SnapshotError(format!("checkpoint field `{name}` is missing")))
        };
        let uint = |name: &str| {
            field(name)?.as_u64().ok_or_else(|| {
                SnapshotError(format!("checkpoint field `{name}` is not an integer"))
            })
        };
        let cfgs = |name: &str| -> Result<Vec<Vec<i64>>, SnapshotError> {
            field(name)?
                .as_arr()
                .ok_or_else(|| SnapshotError(format!("checkpoint field `{name}` is not an array")))?
                .iter()
                .map(cfg_from_json)
                .collect()
        };
        let trace = field("trace")?
            .as_arr()
            .ok_or_else(|| SnapshotError("checkpoint field `trace` is not an array".into()))?
            .iter()
            .map(candidate_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let best = match field("best")? {
            Value::Null => None,
            other => Some(candidate_from_json(other)?),
        };
        let pass_start_score = match field("pass_start_score")? {
            Value::Null => None,
            other => Some(other.as_f64().ok_or_else(|| {
                SnapshotError("checkpoint field `pass_start_score` is not a number".into())
            })?),
        };
        Ok(SearchState {
            seed: uint("seed")?,
            budget: uint("budget")? as usize,
            space_digest: uint("space_digest")?,
            rng_state: uint("rng_state")?,
            phase: field("phase")?
                .as_str()
                .ok_or_else(|| SnapshotError("checkpoint field `phase` is not a string".into()))?
                .to_string(),
            proposed: uint("proposed")? as usize,
            evaluations: uint("tells_applied")? as usize,
            pending: cfgs("pending")?,
            seen: cfgs("seen")?,
            trace,
            best,
            pass_start_score,
        })
    }
}
