//! An ATF-style auto-tuner: constrained integer parameter spaces searched
//! under a fixed evaluation budget.
//!
//! The paper tunes every Lift expression (and PPCG's tile/block sizes) with
//! ATF/OpenTuner for up to three hours per benchmark; this crate plays that
//! role with the budget counted in evaluations instead of wall-clock. It
//! supports the constraint specification ATF adds over OpenTuner
//! (inter-parameter constraints such as *"local size divides global size"*)
//! via arbitrary predicates over complete configurations.
//!
//! # Example
//!
//! ```
//! use lift_tuner::{ParamSpace, ParamSpec, Tuner};
//!
//! let space = ParamSpace::new([
//!     ParamSpec::new("x", (1..=16).collect::<Vec<_>>()),
//!     ParamSpec::new("y", vec![1, 2, 4, 8]),
//! ])
//! .with_constraint(|cfg| cfg[0] % cfg[1] == 0); // y divides x
//!
//! let result = Tuner::new(space, 64)
//!     .with_seed(7)
//!     .run(|cfg| {
//!         // Pretend runtime: minimised at x = 12, y = 4.
//!         let (x, y) = (cfg[0] as f64, cfg[1] as f64);
//!         Some((x - 12.0).abs() + (y - 4.0).abs())
//!     });
//! let best = result.best.expect("found a config");
//! assert_eq!(best.values, vec![12, 4]);
//! ```

pub mod rng;

pub use rng::SplitMix64;

/// One tunable parameter with its candidate values.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    name: String,
    candidates: Vec<i64>,
}

impl ParamSpec {
    /// Creates a parameter from its candidate list.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty — an empty domain makes the whole
    /// space unsatisfiable and is always a configuration bug.
    pub fn new(name: impl Into<String>, candidates: Vec<i64>) -> Self {
        let name = name.into();
        assert!(
            !candidates.is_empty(),
            "parameter `{name}` has no candidate values"
        );
        ParamSpec { name, candidates }
    }

    /// Powers of two from `lo` to `hi` inclusive — the usual domain for
    /// work-group sizes.
    ///
    /// The domain is never empty: when `hi < lo` (e.g. a device whose
    /// work-group limit sits below the requested lower bound) it degrades to
    /// the largest power of two not exceeding `hi`, clamped to at least 1,
    /// instead of tripping the [`ParamSpec::new`] assertion at runtime.
    pub fn pow2(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        let mut c = Vec::new();
        let mut v = lo.max(1);
        while v <= hi {
            c.push(v);
            v *= 2;
        }
        if c.is_empty() {
            let mut v = 1i64;
            while v * 2 <= hi.max(1) {
                v *= 2;
            }
            c.push(v);
        }
        ParamSpec::new(name, c)
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidate values.
    pub fn candidates(&self) -> &[i64] {
        &self.candidates
    }
}

/// A constraint over a complete configuration (values in declaration
/// order).
pub type Constraint = Box<dyn Fn(&[i64]) -> bool + Send + Sync>;

/// A constrained parameter space.
pub struct ParamSpace {
    params: Vec<ParamSpec>,
    constraints: Vec<Constraint>,
}

impl std::fmt::Debug for ParamSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamSpace")
            .field("params", &self.params)
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

impl ParamSpace {
    /// Creates a space from parameter specs.
    pub fn new(params: impl IntoIterator<Item = ParamSpec>) -> Self {
        ParamSpace {
            params: params.into_iter().collect(),
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint (may be called repeatedly).
    pub fn with_constraint(mut self, c: impl Fn(&[i64]) -> bool + Send + Sync + 'static) -> Self {
        self.constraints.push(Box::new(c));
        self
    }

    /// The parameters, in declaration order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Total configuration count before constraints.
    pub fn cardinality(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.candidates.len())
            .product::<usize>()
    }

    /// Whether `cfg` satisfies every constraint.
    pub fn satisfies(&self, cfg: &[i64]) -> bool {
        self.constraints.iter().all(|c| c(cfg))
    }

    fn nth(&self, mut index: usize) -> Vec<i64> {
        let mut cfg = Vec::with_capacity(self.params.len());
        for p in &self.params {
            cfg.push(p.candidates[index % p.candidates.len()]);
            index /= p.candidates.len();
        }
        cfg
    }
}

/// A scored configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Parameter values in declaration order.
    pub values: Vec<i64>,
    /// The score (lower is better; typically modeled seconds).
    pub score: f64,
}

impl Candidate {
    /// The value of parameter `name`, if declared.
    pub fn value_of(&self, space: &ParamSpace, name: &str) -> Option<i64> {
        space
            .params
            .iter()
            .position(|p| p.name == name)
            .map(|i| self.values[i])
    }
}

/// The outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found, if any evaluation succeeded.
    pub best: Option<Candidate>,
    /// Number of evaluator invocations (excludes constraint-filtered
    /// configurations).
    pub evaluations: usize,
    /// Every evaluated configuration with its score, in evaluation order.
    pub trace: Vec<Candidate>,
}

/// The tuner: searches a [`ParamSpace`] with a fixed evaluation budget.
///
/// Small spaces are searched exhaustively; larger spaces by seeded random
/// sampling followed by greedy neighbourhood refinement of the incumbent
/// (a light-weight stand-in for OpenTuner's ensemble search).
pub struct Tuner {
    space: ParamSpace,
    budget: usize,
    seed: u64,
}

impl Tuner {
    /// Creates a tuner over `space` with an evaluation `budget`.
    pub fn new(space: ParamSpace, budget: usize) -> Self {
        Tuner {
            space,
            budget,
            seed: 0x11f7,
        }
    }

    /// Sets the random seed (tuning is fully deterministic given the seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The underlying space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Runs the search. The evaluator returns `Some(score)` (lower better)
    /// or `None` when a configuration fails (does not count against valid
    /// results, but does consume budget).
    pub fn run(&self, mut eval: impl FnMut(&[i64]) -> Option<f64>) -> TuneResult {
        let mut trace = Vec::new();
        let mut best: Option<Candidate> = None;
        let mut evaluations = 0usize;

        let consider = |cfg: Vec<i64>,
                        evaluations: &mut usize,
                        trace: &mut Vec<Candidate>,
                        best: &mut Option<Candidate>,
                        eval: &mut dyn FnMut(&[i64]) -> Option<f64>| {
            *evaluations += 1;
            if let Some(score) = eval(&cfg) {
                let cand = Candidate { values: cfg, score };
                if best.as_ref().is_none_or(|b| cand.score < b.score) {
                    *best = Some(cand.clone());
                }
                trace.push(cand);
            }
        };

        if self.space.cardinality() <= self.budget {
            // Exhaustive.
            for i in 0..self.space.cardinality() {
                let cfg = self.space.nth(i);
                if self.space.satisfies(&cfg) {
                    consider(cfg, &mut evaluations, &mut trace, &mut best, &mut eval);
                }
            }
            return TuneResult {
                best,
                evaluations,
                trace,
            };
        }

        let mut rng = SplitMix64::new(self.seed);
        let sample_budget = (self.budget * 3) / 4;
        let mut seen = std::collections::HashSet::new();
        let mut attempts = 0;
        while evaluations < sample_budget && attempts < self.budget * 20 {
            attempts += 1;
            let idx = rng.gen_range(self.space.cardinality());
            let cfg = self.space.nth(idx);
            if !self.space.satisfies(&cfg) || !seen.insert(cfg.clone()) {
                continue;
            }
            consider(cfg, &mut evaluations, &mut trace, &mut best, &mut eval);
        }

        // Greedy refinement around the incumbent: move one parameter one
        // candidate up/down at a time.
        while evaluations < self.budget {
            let Some(incumbent) = best.clone() else { break };
            let mut improved = false;
            'outer: for (pi, p) in self.space.params.iter().enumerate() {
                let cur_pos = p
                    .candidates
                    .iter()
                    .position(|v| *v == incumbent.values[pi])
                    .unwrap_or(0);
                for np in [cur_pos.wrapping_sub(1), cur_pos + 1] {
                    if evaluations >= self.budget {
                        break 'outer;
                    }
                    let Some(v) = p.candidates.get(np) else {
                        continue;
                    };
                    let mut cfg = incumbent.values.clone();
                    cfg[pi] = *v;
                    if !self.space.satisfies(&cfg) || !seen.insert(cfg.clone()) {
                        continue;
                    }
                    let before = best.as_ref().map(|b| b.score);
                    consider(cfg, &mut evaluations, &mut trace, &mut best, &mut eval);
                    if best.as_ref().map(|b| b.score) != before {
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        TuneResult {
            best,
            evaluations,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(cfg: &[i64]) -> Option<f64> {
        let x = cfg[0] as f64;
        let y = cfg[1] as f64;
        Some((x - 6.0).powi(2) + (y - 4.0).powi(2))
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=8).collect()),
            ParamSpec::new("y", (1..=8).collect()),
        ]);
        let r = Tuner::new(space, 100).run(quadratic);
        assert_eq!(r.best.unwrap().values, vec![6, 4]);
        assert_eq!(r.evaluations, 64);
    }

    #[test]
    fn constraints_filter_configs() {
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=8).collect()),
            ParamSpec::new("y", (1..=8).collect()),
        ])
        .with_constraint(|c| c[0] % c[1] == 0);
        let r = Tuner::new(space, 100).run(quadratic);
        // Best feasible: y divides x; (6,4) infeasible → one of the
        // near-optimal feasible points.
        let best = r.best.unwrap();
        assert_eq!(best.values[0] % best.values[1], 0);
        assert!(best.score <= 2.0, "best {best:?}");
    }

    #[test]
    fn random_search_respects_budget_and_seed() {
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", (1..=100).collect()),
                ParamSpec::new("y", (1..=100).collect()),
            ])
        };
        let r1 = Tuner::new(mk(), 60).with_seed(1).run(quadratic);
        let r2 = Tuner::new(mk(), 60).with_seed(1).run(quadratic);
        assert!(r1.evaluations <= 60);
        assert_eq!(
            r1.best.as_ref().map(|b| &b.values),
            r2.best.as_ref().map(|b| &b.values),
            "same seed must give the same result"
        );
        let r3 = Tuner::new(mk(), 60).with_seed(2).run(quadratic);
        // Different seeds may differ (not asserted), but both must be valid.
        assert!(r3.best.is_some());
    }

    #[test]
    fn refinement_improves_incumbent() {
        // With a tiny sample budget the refinement phase should still crawl
        // toward the optimum.
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=50).collect()),
            ParamSpec::new("y", (1..=50).collect()),
        ]);
        let r = Tuner::new(space, 200).with_seed(3).run(quadratic);
        let best = r.best.unwrap();
        assert!(best.score < 4.0, "refined best {best:?}");
    }

    #[test]
    fn failing_evaluations_are_skipped() {
        let space = ParamSpace::new([ParamSpec::new("x", (1..=10).collect())]);
        let r = Tuner::new(space, 50).run(|cfg| {
            if cfg[0] % 2 == 0 {
                None // "kernel failed to run"
            } else {
                Some(cfg[0] as f64)
            }
        });
        assert_eq!(r.best.unwrap().values, vec![1]);
        assert!(r.trace.iter().all(|c| c.values[0] % 2 == 1));
    }

    #[test]
    fn pow2_candidates() {
        let p = ParamSpec::pow2("wg", 16, 256);
        assert_eq!(p.candidates(), &[16, 32, 64, 128, 256]);
    }

    #[test]
    #[should_panic(expected = "no candidate values")]
    fn empty_domain_panics() {
        ParamSpec::new("x", vec![]);
    }

    #[test]
    fn pow2_inverted_range_degrades_instead_of_panicking() {
        // A device with max_wg < lo used to produce an empty candidate list
        // and trip the ParamSpec::new assertion.
        let p = ParamSpec::pow2("lx", 32, 16);
        assert_eq!(p.candidates(), &[16]);
        let p = ParamSpec::pow2("lx", 32, 1);
        assert_eq!(p.candidates(), &[1]);
        let p = ParamSpec::pow2("lx", 8, 0);
        assert_eq!(p.candidates(), &[1]);
        // Non-power-of-two upper bound: largest pow2 below it.
        let p = ParamSpec::pow2("lx", 64, 24);
        assert_eq!(p.candidates(), &[16]);
    }
}
