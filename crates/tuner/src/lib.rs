//! An ATF-style auto-tuner: constrained integer parameter spaces searched
//! under a fixed evaluation budget.
//!
//! The paper tunes every Lift expression (and PPCG's tile/block sizes) with
//! ATF/OpenTuner for up to three hours per benchmark; this crate plays that
//! role with the budget counted in evaluations instead of wall-clock. It
//! supports the constraint specification ATF adds over OpenTuner
//! (inter-parameter constraints such as *"local size divides global size"*)
//! via arbitrary predicates over complete configurations.
//!
//! The engine underneath is the batched ask/tell [`Search`]: it proposes
//! configurations in batches that a driver may evaluate concurrently (e.g.
//! on the in-repo [`parallel_map`] worker pool) and guarantees results
//! bit-identical to the sequential [`Tuner::run`] for the same seed,
//! whatever the batch size or thread count.
//!
//! Searches are also **checkpointable**: [`Search::snapshot`] captures the
//! full engine state as a serializable [`SearchState`] (JSON via
//! [`SearchState::to_json`]), and [`Search::restore`] —
//! or the convenience [`Tuner::resume`] — picks the search back up
//! bit-identically to a run that was never interrupted. This is what lets
//! the driver's long tuning campaigns survive process kills and be
//! distributed across machines.
//!
//! # Example
//!
//! ```
//! use lift_tuner::{ParamSpace, ParamSpec, Tuner};
//!
//! let space = ParamSpace::new([
//!     ParamSpec::new("x", (1..=16).collect::<Vec<_>>()),
//!     ParamSpec::new("y", vec![1, 2, 4, 8]),
//! ])
//! .with_constraint(|cfg| cfg[0] % cfg[1] == 0); // y divides x
//!
//! let result = Tuner::new(space, 64)
//!     .with_seed(7)
//!     .run(|cfg| {
//!         // Pretend runtime: minimised at x = 12, y = 4.
//!         let (x, y) = (cfg[0] as f64, cfg[1] as f64);
//!         Some((x - 12.0).abs() + (y - 4.0).abs())
//!     });
//! let best = result.best.expect("found a config");
//! assert_eq!(best.values, vec![12, 4]);
//! ```

#![forbid(unsafe_code)]

pub mod json;
pub mod pool;
pub mod rng;
pub mod search;

pub use pool::parallel_map;
pub use rng::SplitMix64;
pub use search::{Search, SearchState, SnapshotError, SEARCH_STATE_SCHEMA_VERSION};

/// One tunable parameter with its candidate values.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    name: String,
    candidates: Vec<i64>,
}

impl ParamSpec {
    /// Creates a parameter from its candidate list.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty — an empty domain makes the whole
    /// space unsatisfiable and is always a configuration bug.
    pub fn new(name: impl Into<String>, candidates: Vec<i64>) -> Self {
        let name = name.into();
        assert!(
            !candidates.is_empty(),
            "parameter `{name}` has no candidate values"
        );
        ParamSpec { name, candidates }
    }

    /// Powers of two from `lo` to `hi` inclusive — the usual domain for
    /// work-group sizes.
    ///
    /// The domain is never empty: when `hi < lo` (e.g. a device whose
    /// work-group limit sits below the requested lower bound) it degrades to
    /// the largest power of two not exceeding `hi`, clamped to at least 1,
    /// instead of tripping the [`ParamSpec::new`] assertion at runtime.
    pub fn pow2(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        let mut c = Vec::new();
        let mut v = lo.max(1);
        while v <= hi {
            c.push(v);
            v *= 2;
        }
        if c.is_empty() {
            let mut v = 1i64;
            while v * 2 <= hi.max(1) {
                v *= 2;
            }
            c.push(v);
        }
        ParamSpec::new(name, c)
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidate values.
    pub fn candidates(&self) -> &[i64] {
        &self.candidates
    }
}

/// A constraint over a complete configuration (values in declaration
/// order).
pub type Constraint = Box<dyn Fn(&[i64]) -> bool + Send + Sync>;

/// A constrained parameter space.
pub struct ParamSpace {
    params: Vec<ParamSpec>,
    constraints: Vec<Constraint>,
}

impl std::fmt::Debug for ParamSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamSpace")
            .field("params", &self.params)
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

impl ParamSpace {
    /// Creates a space from parameter specs.
    pub fn new(params: impl IntoIterator<Item = ParamSpec>) -> Self {
        ParamSpace {
            params: params.into_iter().collect(),
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint (may be called repeatedly).
    pub fn with_constraint(mut self, c: impl Fn(&[i64]) -> bool + Send + Sync + 'static) -> Self {
        self.constraints.push(Box::new(c));
        self
    }

    /// The parameters, in declaration order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Total configuration count before constraints.
    pub fn cardinality(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.candidates.len())
            .product::<usize>()
    }

    /// Whether `cfg` satisfies every constraint.
    pub fn satisfies(&self, cfg: &[i64]) -> bool {
        self.constraints.iter().all(|c| c(cfg))
    }

    pub(crate) fn nth(&self, mut index: usize) -> Vec<i64> {
        let mut cfg = Vec::with_capacity(self.params.len());
        for p in &self.params {
            cfg.push(p.candidates[index % p.candidates.len()]);
            index /= p.candidates.len();
        }
        cfg
    }
}

/// A scored configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Parameter values in declaration order.
    pub values: Vec<i64>,
    /// The score (lower is better; typically modeled seconds).
    pub score: f64,
}

impl Candidate {
    /// The value of parameter `name`, if declared.
    pub fn value_of(&self, space: &ParamSpace, name: &str) -> Option<i64> {
        space
            .params
            .iter()
            .position(|p| p.name == name)
            .map(|i| self.values[i])
    }
}

/// The outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found, if any evaluation succeeded.
    pub best: Option<Candidate>,
    /// Number of evaluator invocations (excludes constraint-filtered
    /// configurations).
    pub evaluations: usize,
    /// Every evaluated configuration with its score, in evaluation order.
    pub trace: Vec<Candidate>,
}

/// The tuner: searches a [`ParamSpace`] with a fixed evaluation budget.
///
/// Small spaces are searched exhaustively; larger spaces by seeded random
/// sampling followed by greedy neighbourhood refinement of the incumbent
/// (a light-weight stand-in for OpenTuner's ensemble search).
///
/// [`Tuner::run`] is the sequential callback driver; parallel drivers use
/// the batched ask/tell engine directly via [`Tuner::into_search`] (or
/// [`Search::new`]) and are guaranteed the identical result for the same
/// seed.
pub struct Tuner {
    space: ParamSpace,
    budget: usize,
    seed: u64,
}

impl Tuner {
    /// Creates a tuner over `space` with an evaluation `budget`.
    pub fn new(space: ParamSpace, budget: usize) -> Self {
        Tuner {
            space,
            budget,
            seed: 0x11f7,
        }
    }

    /// Sets the random seed (tuning is fully deterministic given the seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The underlying space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Converts the tuner into the batched ask/tell engine it is built on.
    pub fn into_search(self) -> Search {
        Search::new(self.space, self.budget, self.seed)
    }

    /// Runs the search sequentially. The evaluator returns `Some(score)`
    /// (lower better) or `None` when a configuration fails (does not count
    /// against valid results, but does consume budget).
    ///
    /// This is the batch-size-1 driver over [`Search`]; a parallel driver
    /// telling the same scores produces the identical [`TuneResult`].
    pub fn run(self, mut eval: impl FnMut(&[i64]) -> Option<f64>) -> TuneResult {
        let mut search = self.into_search();
        while !search.is_done() {
            for cfg in search.ask(1) {
                let score = eval(&cfg);
                search.tell(&cfg, score);
            }
        }
        search.into_result()
    }

    /// Resumes a checkpointed search sequentially: restores `state` over
    /// this tuner's space and drives the remaining proposals through
    /// `eval`. With a deterministic evaluator the result is bit-identical
    /// to the [`Tuner::run`] that was never interrupted. The tuner's own
    /// budget and seed are ignored — the snapshot carries them.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot does not match this tuner's
    /// parameter space (see [`Search::restore`]).
    pub fn resume(
        self,
        state: SearchState,
        mut eval: impl FnMut(&[i64]) -> Option<f64>,
    ) -> Result<TuneResult, SnapshotError> {
        let mut search = Search::restore(self.space, state)?;
        while !search.is_done() {
            for cfg in search.ask(1) {
                let score = eval(&cfg);
                search.tell(&cfg, score);
            }
        }
        Ok(search.into_result())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(cfg: &[i64]) -> Option<f64> {
        let x = cfg[0] as f64;
        let y = cfg[1] as f64;
        Some((x - 6.0).powi(2) + (y - 4.0).powi(2))
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=8).collect()),
            ParamSpec::new("y", (1..=8).collect()),
        ]);
        let r = Tuner::new(space, 100).run(quadratic);
        assert_eq!(r.best.unwrap().values, vec![6, 4]);
        assert_eq!(r.evaluations, 64);
    }

    #[test]
    fn constraints_filter_configs() {
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=8).collect()),
            ParamSpec::new("y", (1..=8).collect()),
        ])
        .with_constraint(|c| c[0] % c[1] == 0);
        let r = Tuner::new(space, 100).run(quadratic);
        // Best feasible: y divides x; (6,4) infeasible → one of the
        // near-optimal feasible points.
        let best = r.best.unwrap();
        assert_eq!(best.values[0] % best.values[1], 0);
        assert!(best.score <= 2.0, "best {best:?}");
    }

    #[test]
    fn random_search_respects_budget_and_seed() {
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", (1..=100).collect()),
                ParamSpec::new("y", (1..=100).collect()),
            ])
        };
        let r1 = Tuner::new(mk(), 60).with_seed(1).run(quadratic);
        let r2 = Tuner::new(mk(), 60).with_seed(1).run(quadratic);
        assert!(r1.evaluations <= 60);
        assert_eq!(
            r1.best.as_ref().map(|b| &b.values),
            r2.best.as_ref().map(|b| &b.values),
            "same seed must give the same result"
        );
        let r3 = Tuner::new(mk(), 60).with_seed(2).run(quadratic);
        // Different seeds may differ (not asserted), but both must be valid.
        assert!(r3.best.is_some());
    }

    #[test]
    fn refinement_improves_incumbent() {
        // With a tiny sample budget the refinement phase should still crawl
        // toward the optimum.
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=50).collect()),
            ParamSpec::new("y", (1..=50).collect()),
        ]);
        let r = Tuner::new(space, 200).with_seed(3).run(quadratic);
        let best = r.best.unwrap();
        assert!(best.score < 4.0, "refined best {best:?}");
    }

    #[test]
    fn failing_evaluations_are_skipped() {
        let space = ParamSpace::new([ParamSpec::new("x", (1..=10).collect())]);
        let r = Tuner::new(space, 50).run(|cfg| {
            if cfg[0] % 2 == 0 {
                None // "kernel failed to run"
            } else {
                Some(cfg[0] as f64)
            }
        });
        assert_eq!(r.best.unwrap().values, vec![1]);
        assert!(r.trace.iter().all(|c| c.values[0] % 2 == 1));
    }

    #[test]
    fn pow2_candidates() {
        let p = ParamSpec::pow2("wg", 16, 256);
        assert_eq!(p.candidates(), &[16, 32, 64, 128, 256]);
    }

    #[test]
    #[should_panic(expected = "no candidate values")]
    fn empty_domain_panics() {
        ParamSpec::new("x", vec![]);
    }

    #[test]
    fn batched_ask_tell_matches_sequential_run_exactly() {
        // The same search driven at batch sizes 1, 3, 5 and 16 must produce
        // bit-identical traces, bests and evaluation counts.
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", (1..=100).collect::<Vec<_>>()),
                ParamSpec::new("y", (1..=100).collect::<Vec<_>>()),
            ])
            .with_constraint(|c| (c[0] + c[1]) % 3 != 0)
        };
        // Some configurations "fail" to exercise the None path too.
        let eval = |cfg: &[i64]| {
            if cfg[0] % 11 == 0 {
                None
            } else {
                quadratic(cfg)
            }
        };
        let reference = Tuner::new(mk(), 60).with_seed(9).run(eval);
        for batch_size in [1usize, 3, 5, 16] {
            let mut search = Search::new(mk(), 60, 9);
            while !search.is_done() {
                let batch = search.ask(batch_size);
                for cfg in batch {
                    search.tell(&cfg, eval(&cfg));
                }
            }
            let got = search.into_result();
            assert_eq!(got.trace, reference.trace, "batch={batch_size}");
            assert_eq!(got.best, reference.best, "batch={batch_size}");
            assert_eq!(got.evaluations, reference.evaluations, "batch={batch_size}");
        }
    }

    #[test]
    fn out_of_order_tells_are_applied_in_proposal_order() {
        let space = ParamSpace::new([ParamSpec::new("x", (1..=6).collect::<Vec<_>>())]);
        let mut search = Search::new(space, 100, 0);
        let batch = search.ask(6);
        assert_eq!(batch.len(), 6, "exhaustive block proposes everything");
        // Tell in reverse order with identical scores: the winner must be
        // the EARLIEST proposal (tie-break on proposal index), and the
        // trace must follow proposal order, not tell order.
        for cfg in batch.iter().rev() {
            search.tell(cfg, Some(1.0));
        }
        let r = search.into_result();
        assert_eq!(r.best.unwrap().values, batch[0]);
        let trace_cfgs: Vec<&Vec<i64>> = r.trace.iter().map(|c| &c.values).collect();
        assert_eq!(trace_cfgs, batch.iter().collect::<Vec<_>>());
    }

    #[test]
    fn ask_returns_empty_between_blocks_until_tells_arrive() {
        // A large space forces sampling → refinement; the refinement pass
        // cannot be proposed before the sampling scores are known.
        let space = ParamSpace::new([
            ParamSpec::new("x", (1..=100).collect::<Vec<_>>()),
            ParamSpec::new("y", (1..=100).collect::<Vec<_>>()),
        ]);
        let mut search = Search::new(space, 40, 2);
        let batch = search.ask(1000);
        assert_eq!(batch.len(), 30, "sampling block is 3/4 of the budget");
        let held_back = batch[0].clone();
        for cfg in &batch[1..] {
            search.tell(cfg, quadratic(cfg));
        }
        assert!(
            search.ask(8).is_empty(),
            "no refinement proposals while a sampling tell is outstanding"
        );
        search.tell(&held_back, quadratic(&held_back));
        assert!(
            !search.ask(8).is_empty(),
            "refinement starts after the block completes"
        );
    }

    #[test]
    #[should_panic(expected = "was not asked")]
    fn telling_an_unasked_config_panics() {
        let space = ParamSpace::new([ParamSpec::new("x", vec![1, 2])]);
        let mut search = Search::new(space, 10, 0);
        search.tell(&[7], Some(1.0));
    }

    /// Drives `search` to completion with `eval` at the given batch size.
    fn drive(
        mut search: Search,
        batch_size: usize,
        eval: impl Fn(&[i64]) -> Option<f64>,
    ) -> TuneResult {
        while !search.is_done() {
            for cfg in search.ask(batch_size) {
                search.tell(&cfg, eval(&cfg));
            }
        }
        search.into_result()
    }

    #[test]
    fn snapshot_restore_is_bit_identical_at_every_interruption_point() {
        // Interrupt the search after every single tell, round-trip the
        // snapshot through JSON, and finish on the restored engine: every
        // interruption point must reproduce the uninterrupted result
        // bit-for-bit (trace scores compared via to_bits through
        // PartialEq on f64 — exact, not approximate).
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", (1..=40).collect::<Vec<_>>()),
                ParamSpec::new("y", (1..=40).collect::<Vec<_>>()),
            ])
            .with_constraint(|c| (c[0] + c[1]) % 5 != 0)
        };
        let eval = |cfg: &[i64]| {
            if cfg[0] % 13 == 0 {
                None
            } else {
                Some((cfg[0] as f64 - 6.3).powi(2) + (cfg[1] as f64 - 4.1).powi(2))
            }
        };
        let reference = drive(Search::new(mk(), 24, 17), 1, eval);
        for stop_after in 0..=24usize {
            let mut search = Search::new(mk(), 24, 17);
            let mut told = 0;
            'outer: while !search.is_done() {
                for cfg in search.ask(1) {
                    if told == stop_after {
                        break 'outer;
                    }
                    search.tell(&cfg, eval(&cfg));
                    told += 1;
                }
            }
            let json = search.snapshot().to_json().to_json();
            let state = SearchState::from_json(&json::Value::parse(&json).unwrap()).unwrap();
            let resumed = Search::restore(mk(), state).unwrap();
            let got = drive(resumed, 3, eval);
            assert_eq!(got.trace, reference.trace, "stop_after={stop_after}");
            assert_eq!(got.best, reference.best, "stop_after={stop_after}");
            assert_eq!(
                got.evaluations, reference.evaluations,
                "stop_after={stop_after}"
            );
        }
    }

    #[test]
    fn snapshot_rolls_in_flight_proposals_back_into_pending() {
        // Ask out a whole batch, tell only part of it out of order, then
        // snapshot: the restored search must re-propose the untold
        // configurations and still converge to the reference result.
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", (1..=60).collect::<Vec<_>>()),
                ParamSpec::new("y", (1..=60).collect::<Vec<_>>()),
            ])
        };
        let eval = |cfg: &[i64]| Some((cfg[0] as f64 - 20.0).abs() + (cfg[1] as f64 - 9.0).abs());
        let reference = drive(Search::new(mk(), 20, 3), 1, eval);

        let mut search = Search::new(mk(), 20, 3);
        let batch = search.ask(10);
        assert!(batch.len() >= 4, "sampling batch");
        // Tell the 4th and 2nd only: both stay buffered behind the untold
        // 1st and must be discarded by the snapshot.
        search.tell(&batch[3], eval(&batch[3]));
        search.tell(&batch[1], eval(&batch[1]));
        let state = search.snapshot();
        assert_eq!(state.evaluations, 0, "no tell was applied yet");
        assert!(
            state.pending.iter().any(|c| c == &batch[1]),
            "buffered-but-unapplied proposals are re-proposed"
        );
        let got = drive(Search::restore(mk(), state).unwrap(), 7, eval);
        assert_eq!(got.trace, reference.trace);
        assert_eq!(got.best, reference.best);
    }

    #[test]
    fn restore_rejects_a_mismatched_space() {
        let space_a = ParamSpace::new([ParamSpec::new("x", vec![1, 2, 3])]);
        let space_b = ParamSpace::new([ParamSpec::new("x", vec![1, 2, 4])]);
        let state = Search::new(space_a, 10, 0).snapshot();
        let err = match Search::restore(space_b, state) {
            Err(e) => e,
            Ok(_) => panic!("a mismatched space must be rejected"),
        };
        assert!(
            err.to_string().contains("different parameter space"),
            "{err}"
        );
        // A matching digest with a truncated configuration vector (file
        // corruption the digest cannot see) is rejected, not a later
        // index-out-of-bounds panic.
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", vec![1, 2, 3]),
                ParamSpec::new("y", vec![1, 2]),
            ])
        };
        let mut state = Search::new(mk(), 10, 0).snapshot();
        state.best = Some(Candidate {
            values: vec![1],
            score: 0.5,
        });
        let err = match Search::restore(mk(), state) {
            Err(e) => e,
            Ok(_) => panic!("a truncated configuration must be rejected"),
        };
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn from_json_rejects_version_mismatch_and_garbage() {
        let space = ParamSpace::new([ParamSpec::new("x", vec![1, 2, 3])]);
        let mut v = Search::new(space, 10, 0).snapshot().to_json();
        // Bump the version: must name both versions in the error.
        if let json::Value::Obj(members) = &mut v {
            members[0].1 = json::Value::UInt(99);
        }
        let err = SearchState::from_json(&v).unwrap_err();
        assert!(err.to_string().contains("schema_version 99"), "{err}");
        assert!(err.to_string().contains("version 1"), "{err}");
        // A missing version is equally loud.
        let err = SearchState::from_json(&json::Value::Obj(vec![])).unwrap_err();
        assert!(err.to_string().contains("<missing>"), "{err}");
        // Missing fields name themselves.
        let err = SearchState::from_json(
            &json::Value::parse(r#"{"schema_version": 1, "seed": 0}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains('`'), "{err}");
    }

    #[test]
    fn tuner_resume_matches_uninterrupted_run() {
        let mk = || {
            ParamSpace::new([
                ParamSpec::new("x", (1..=100).collect::<Vec<_>>()),
                ParamSpec::new("y", (1..=100).collect::<Vec<_>>()),
            ])
        };
        let reference = Tuner::new(mk(), 40).with_seed(8).run(quadratic);
        // Interrupt after 11 tells.
        let mut search = Tuner::new(mk(), 40).with_seed(8).into_search();
        let mut told = 0;
        'outer: while !search.is_done() {
            for cfg in search.ask(1) {
                if told == 11 {
                    break 'outer;
                }
                search.tell(&cfg, quadratic(&cfg));
                told += 1;
            }
        }
        let got = Tuner::new(mk(), 40)
            .resume(search.snapshot(), quadratic)
            .expect("space matches");
        assert_eq!(got.trace, reference.trace);
        assert_eq!(got.best, reference.best);
        assert_eq!(got.evaluations, reference.evaluations);
    }

    #[test]
    fn pow2_inverted_range_degrades_instead_of_panicking() {
        // A device with max_wg < lo used to produce an empty candidate list
        // and trip the ParamSpec::new assertion.
        let p = ParamSpec::pow2("lx", 32, 16);
        assert_eq!(p.candidates(), &[16]);
        let p = ParamSpec::pow2("lx", 32, 1);
        assert_eq!(p.candidates(), &[1]);
        let p = ParamSpec::pow2("lx", 8, 0);
        assert_eq!(p.candidates(), &[1]);
        // Non-power-of-two upper bound: largest pow2 below it.
        let p = ParamSpec::pow2("lx", 64, 24);
        assert_eq!(p.candidates(), &[16]);
    }
}
