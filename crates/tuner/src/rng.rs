//! A minimal deterministic PRNG (SplitMix64) for the random-sampling phase.
//!
//! The tuner only needs reproducible, well-mixed draws from small integer
//! ranges; SplitMix64 (Steele et al., OOPSLA 2014) passes BigCrush and needs
//! no external dependency.

/// SplitMix64 state.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator (any seed is fine, including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current stream position. [`SplitMix64::new`] with this value
    /// resumes the stream exactly where it stands — the state word *is*
    /// the position, which is what makes searches checkpointable.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, n)` (Lemire's multiply-shift reduction; the
    /// bias for the `n` used here — parameter-space cardinalities — is
    /// far below anything a tuner could observe).
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_resumes_the_stream() {
        let mut r = SplitMix64::new(99);
        for _ in 0..17 {
            r.next_u64();
        }
        let mut resumed = SplitMix64::new(r.state());
        for _ in 0..50 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = (0..8).map(|_| SplitMix64::new(42).next_u64()).collect();
        assert!(a.iter().all(|v| *v == a[0]));
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }
}
