//! A minimal JSON value model, parser and writer.
//!
//! Checkpoint files ([`crate::SearchState`]), the driver's tuning
//! checkpoints and the harness's partial shard reports all need to read
//! *and* write JSON; like [`crate::rng`] (for `rand`) and [`crate::pool`]
//! (for `rayon`), this module is the in-repo stand-in for the external
//! dependency (`serde_json`) the build deliberately avoids.
//!
//! Two properties matter for the resumability contract and are tested
//! here:
//!
//! * **Integers round-trip exactly.** Numbers without a fraction or
//!   exponent parse into [`Value::Int`] (`i64`) or [`Value::UInt`]
//!   (`u64`) — a 64-bit RNG state must not pass through an `f64` and
//!   lose its low bits.
//! * **Floats round-trip bit-exactly.** Floats are written with Rust's
//!   `{:?}` formatting (the shortest representation that parses back to
//!   the same value, always containing `.`, `e` or a non-finite name), so
//!   `parse(write(x)) == x` for every finite `f64`.
//!
//! ```
//! use lift_tuner::json::Value;
//!
//! let v = Value::parse(r#"{"seed": 2018, "best": [1.5, -2.0], "done": false}"#).unwrap();
//! assert_eq!(v.get("seed").and_then(Value::as_u64), Some(2018));
//! assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
//! ```

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved (members are a vector of
/// pairs, not a map), so writing is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that fits `i64` (no fraction, no exponent).
    Int(i64),
    /// A non-negative number above `i64::MAX` that fits `u64`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    /// Writes the value as compact JSON (no insignificant whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `i64` (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric value as `u64` (non-negative integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any number; integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest round-tripping form and always
                // contains `.` or `e`, so the parser reads it back as a
                // float, not an integer.
                let _ = write!(out, "{f:?}");
            } else {
                // JSON has no NaN/inf; none should reach a checkpoint
                // (failed evaluations carry no score), but never emit an
                // unparseable document.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let val = parse_value(bytes, pos)?;
                members.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected a string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not needed for the ASCII
                        // identifiers this repo writes; reject them loudly
                        // instead of silently mangling.
                        let c = char::from_u32(code)
                            .ok_or(format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty checked");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected a number at byte {start}"));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trips() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": true}, "e": "x\"y\\z\n"}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Value::Int(-2));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\\z\n"));
        let rewritten = v.to_json();
        assert_eq!(Value::parse(&rewritten).unwrap(), v);
    }

    #[test]
    fn u64_integers_survive_without_precision_loss() {
        // An RNG state near u64::MAX must not pass through f64.
        let big = u64::MAX - 3;
        let text = Value::Obj(vec![("rng".into(), Value::UInt(big))]).to_json();
        let v = Value::parse(&text).unwrap();
        assert_eq!(v.get("rng").unwrap().as_u64(), Some(big));
        // And i64::MIN parses as Int.
        let v = Value::parse("-9223372036854775808").unwrap();
        assert_eq!(v, Value::Int(i64::MIN));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1, 1.0, -0.0, 1e300, 4.9e-324, std::f64::consts::PI] {
            let text = Value::Float(f).to_json();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} → {text} → {back}");
        }
        // Whole floats keep their float-ness through the round trip.
        assert_eq!(Value::parse("1.0").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn errors_are_loud_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "[] []",
        ] {
            assert!(Value::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Value::parse(r#""caf\u00e9 — ünïcode""#).unwrap();
        assert_eq!(v.as_str(), Some("café — ünïcode"));
        let control = Value::Str("a\u{1}b".into()).to_json();
        assert_eq!(control, r#""a\u0001b""#);
        assert_eq!(Value::parse(&control).unwrap().as_str(), Some("a\u{1}b"));
    }
}
