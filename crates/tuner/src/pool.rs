//! A minimal scoped worker pool: order-preserving parallel map over owned
//! items with a fixed thread count.
//!
//! Like the in-repo [`crate::SplitMix64`], this exists so the workspace
//! needs no external dependency (rayon et al.): `std::thread::scope` is
//! enough for the tuner's batch evaluation, the per-variant fan-out and the
//! harness benchmark sweep. Work is pulled from a shared atomic cursor, so
//! uneven item costs balance across workers, and results land in the slot
//! of their input index — callers observe exactly the order they passed in,
//! which is what keeps parallel tuning deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `threads` workers, preserving input
/// order in the result.
///
/// `threads <= 1` (or a single item) runs inline on the caller's thread
/// with no synchronisation at all, so the sequential path stays the
/// sequential path. A panic in `f` propagates to the caller once the scope
/// joins.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = lock_ok(&work[i]).take().expect("each item taken once");
                let r = f(item);
                *lock_ok(&slots[i]) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("scope joined, every slot filled")
        })
        .collect()
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let got = parallel_map(threads, items.clone(), |i| i * 3);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let got: Vec<usize> = parallel_map(4, Vec::<usize>::new(), |i| i);
        assert!(got.is_empty());
        assert_eq!(parallel_map(4, vec![41], |i| i + 1), vec![42]);
    }

    #[test]
    fn work_is_actually_distributed() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        let ids = parallel_map(4, (0..64).collect::<Vec<_>>(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: HashSet<ThreadId> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected more than one worker thread");
    }
}
