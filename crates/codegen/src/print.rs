//! Pretty printing of kernels as OpenCL C source text.

use std::fmt::Write as _;

use crate::clike::{BinOp, CExpr, CStmt, Kernel, UnOp};

impl Kernel {
    /// Renders the kernel (with all referenced user-function definitions) as
    /// OpenCL C source.
    pub fn to_source(&self) -> String {
        let mut s = String::new();
        for uf in &self.user_funs {
            let _ = writeln!(s, "{}", uf.c_definition());
        }
        if !self.user_funs.is_empty() {
            s.push('\n');
        }
        let _ = write!(s, "__kernel void {}(", self.name);
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let constness = if p.is_output { "" } else { "const " };
            let _ = write!(
                s,
                "__global {constness}{}* restrict {}",
                p.elem.c_name(),
                p.var
            );
        }
        s.push_str(") {\n");
        for l in &self.locals {
            let _ = writeln!(s, "  __local {} {}[{}];", l.elem.c_name(), l.var, l.len);
        }
        for st in &self.body {
            print_stmt(st, &mut s, 1);
        }
        s.push_str("}\n");
        s
    }
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

fn print_stmt(st: &CStmt, s: &mut String, level: usize) {
    match st {
        CStmt::DeclScalar { var, ty, init } => {
            indent(s, level);
            match init {
                Some(e) => {
                    let _ = writeln!(s, "{} {} = {};", ty.c_name(), var, expr_str(e));
                }
                None => {
                    let _ = writeln!(s, "{} {};", ty.c_name(), var);
                }
            }
        }
        CStmt::DeclPrivateArray { var, ty, len } => {
            indent(s, level);
            let _ = writeln!(s, "{} {}[{}];", ty.c_name(), var, len);
        }
        CStmt::Assign { var, value } => {
            indent(s, level);
            let _ = writeln!(s, "{} = {};", var, expr_str(value));
        }
        CStmt::Store {
            buf, idx, value, ..
        } => {
            indent(s, level);
            let _ = writeln!(s, "{}[{}] = {};", buf, expr_str(idx), expr_str(value));
        }
        CStmt::For {
            var,
            init,
            bound,
            step,
            body,
        } => {
            indent(s, level);
            let _ = writeln!(
                s,
                "for (int {v} = {i}; {v} < {b}; {v} += {st}) {{",
                v = var,
                i = expr_str(init),
                b = expr_str(bound),
                st = expr_str(step),
            );
            for inner in body {
                print_stmt(inner, s, level + 1);
            }
            indent(s, level);
            s.push_str("}\n");
        }
        CStmt::If { cond, then_, else_ } => {
            indent(s, level);
            let _ = writeln!(s, "if ({}) {{", expr_str(cond));
            for inner in then_ {
                print_stmt(inner, s, level + 1);
            }
            if !else_.is_empty() {
                indent(s, level);
                s.push_str("} else {\n");
                for inner in else_ {
                    print_stmt(inner, s, level + 1);
                }
            }
            indent(s, level);
            s.push_str("}\n");
        }
        CStmt::Barrier { local, global } => {
            indent(s, level);
            let fence = match (local, global) {
                (true, true) => "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE",
                (true, false) => "CLK_LOCAL_MEM_FENCE",
                _ => "CLK_GLOBAL_MEM_FENCE",
            };
            let _ = writeln!(s, "barrier({fence});");
        }
        CStmt::Comment(c) => {
            indent(s, level);
            let _ = writeln!(s, "// {c}");
        }
    }
}

/// Renders an expression with full parenthesisation of compound operands
/// (generated code favours unambiguity over minimal parens).
pub fn expr_str(e: &CExpr) -> String {
    match e {
        CExpr::Int(v) => v.to_string(),
        CExpr::Float(v) => format!("{v:?}f"),
        CExpr::Bool(v) => v.to_string(),
        CExpr::Var(v) => v.to_string(),
        CExpr::WorkItem(f, d) => format!("{}({})", f.c_name(), d),
        CExpr::Bin(BinOp::Min, a, b) => format!("min({}, {})", expr_str(a), expr_str(b)),
        CExpr::Bin(BinOp::Max, a, b) => format!("max({}, {})", expr_str(a), expr_str(b)),
        CExpr::Bin(op, a, b) => {
            format!("({} {} {})", expr_str(a), op.c_token(), expr_str(b))
        }
        CExpr::Un(UnOp::Neg, a) => format!("(-{})", expr_str(a)),
        CExpr::Un(UnOp::Not, a) => format!("(!{})", expr_str(a)),
        CExpr::Call(f, args) => {
            let args: Vec<String> = args.iter().map(expr_str).collect();
            format!("{}({})", f.name(), args.join(", "))
        }
        CExpr::Load { buf, idx, .. } => format!("{}[{}]", buf, expr_str(idx)),
        CExpr::Select { cond, then_, else_ } => format!(
            "(({}) ? ({}) : ({}))",
            expr_str(cond),
            expr_str(then_),
            expr_str(else_)
        ),
        CExpr::Cast(t, a) => format!("(({})({}))", t.c_name(), expr_str(a)),
    }
}

#[cfg(test)]
mod tests {

    use crate::compile::compile_kernel;
    use lift_core::prelude::*;

    #[test]
    fn source_is_plausible_opencl() {
        let prog = lam_named("A", Type::array(Type::f32(), 16), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce_seq(add_f32(), Expr::f32(0.0), nbh)
            });
            map_glb(0, sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let k = compile_kernel("jacobi3pt", &prog).expect("compiles");
        let src = k.to_source();
        assert!(src.contains("__kernel void jacobi3pt("));
        assert!(src.contains("__global const float* restrict A"));
        assert!(src.contains("__global float* restrict out"));
        assert!(src.contains("get_global_id(0)"));
        assert!(src.contains("float add(float a, float b) { return a + b; }"));
        // pad(clamp) became min/max index math on the load.
        assert!(src.contains("min("));
        assert!(src.contains("max("));
        // No data movement for pad/slide: exactly one input load site.
        let loads = src.matches("A_").count();
        assert!(loads >= 1);
    }
}
