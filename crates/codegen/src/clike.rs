//! A small OpenCL-C abstract syntax tree.
//!
//! Rich enough for the kernels Lift generates (nested counted loops over
//! work-item ids, loads/stores through computed indices, user-function calls,
//! barriers, local/private buffers) while staying directly interpretable by
//! the virtual device.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use lift_core::scalar::{Scalar, ScalarKind};
use lift_core::userfun::UserFun;

/// OpenCL address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// Device global memory (`__global`).
    Global,
    /// Work-group local/shared memory (`__local`).
    Local,
    /// Per-work-item private memory.
    Private,
}

impl AddressSpace {
    /// The OpenCL qualifier keyword.
    pub fn c_qualifier(self) -> &'static str {
        match self {
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
            AddressSpace::Private => "__private",
        }
    }
}

/// Scalar C types used in kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CType {
    /// `float`.
    Float,
    /// `int`.
    Int,
    /// `bool`.
    Bool,
}

impl CType {
    /// The OpenCL C spelling.
    pub fn c_name(self) -> &'static str {
        match self {
            CType::Float => "float",
            CType::Int => "int",
            CType::Bool => "bool",
        }
    }

    /// Conversion from an IR scalar kind.
    pub fn from_kind(k: ScalarKind) -> CType {
        match k {
            ScalarKind::F32 => CType::Float,
            ScalarKind::I32 => CType::Int,
            ScalarKind::Bool => CType::Bool,
        }
    }
}

static NEXT_VAR_ID: AtomicU32 = AtomicU32::new(0);

/// A C variable with a process-unique id (the printed name combines the
/// display name and the id, so shadowing can never occur).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarRef {
    id: u32,
    name: Arc<str>,
}

impl VarRef {
    /// Creates a fresh variable with the given display name.
    pub fn fresh(name: &str) -> VarRef {
        VarRef {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            name: Arc::from(name),
        }
    }

    /// The process-unique id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The display name fragment.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique C identifier.
    pub fn c_name(&self) -> String {
        format!("{}_{}", self.name, self.id)
    }
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.c_name())
    }
}

/// OpenCL work-item query functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkItemFn {
    /// `get_global_id(d)`.
    GlobalId,
    /// `get_local_id(d)`.
    LocalId,
    /// `get_group_id(d)`.
    GroupId,
    /// `get_global_size(d)`.
    GlobalSize,
    /// `get_local_size(d)`.
    LocalSize,
    /// `get_num_groups(d)`.
    NumGroups,
}

impl WorkItemFn {
    /// The OpenCL function name.
    pub fn c_name(self) -> &'static str {
        match self {
            WorkItemFn::GlobalId => "get_global_id",
            WorkItemFn::LocalId => "get_local_id",
            WorkItemFn::GroupId => "get_group_id",
            WorkItemFn::GlobalSize => "get_global_size",
            WorkItemFn::LocalSize => "get_local_size",
            WorkItemFn::NumGroups => "get_num_groups",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    /// `min(a, b)` — printed as a call.
    Min,
    /// `max(a, b)` — printed as a call.
    Max,
}

impl BinOp {
    /// The C operator token (infix operators only).
    pub fn c_token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Min | BinOp::Max => unreachable!("min/max print as calls"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// A C expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f32),
    /// Boolean literal.
    Bool(bool),
    /// Variable read.
    Var(VarRef),
    /// A work-item query, e.g. `get_global_id(0)`.
    WorkItem(WorkItemFn, u8),
    /// Binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    Un(UnOp, Box<CExpr>),
    /// A user-function call; carries the full [`UserFun`] so the interpreter
    /// can execute its Rust semantics.
    Call(Arc<UserFun>, Vec<CExpr>),
    /// `buf[idx]` load from a buffer in some address space.
    Load {
        /// The buffer variable.
        buf: VarRef,
        /// Its address space.
        space: AddressSpace,
        /// Linear element index.
        idx: Box<CExpr>,
    },
    /// Ternary `cond ? then : else` (lazy in both C and the interpreter).
    Select {
        /// Condition.
        cond: Box<CExpr>,
        /// Value if true.
        then_: Box<CExpr>,
        /// Value if false.
        else_: Box<CExpr>,
    },
    /// `(int)(e)` / `(float)(e)`.
    Cast(CType, Box<CExpr>),
}

#[allow(clippy::should_implement_trait)] // constructors fold constants; static
                                         // methods keep call sites explicit (`CExpr::add(a, b)`), unlike `std::ops`.
impl CExpr {
    /// `a + b`.
    pub fn add(a: CExpr, b: CExpr) -> CExpr {
        match (&a, &b) {
            (CExpr::Int(0), _) => return b,
            (_, CExpr::Int(0)) => return a,
            (CExpr::Int(x), CExpr::Int(y)) => return CExpr::Int(x + y),
            _ => {}
        }
        CExpr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: CExpr, b: CExpr) -> CExpr {
        match (&a, &b) {
            (CExpr::Int(1), _) => return b,
            (_, CExpr::Int(1)) => return a,
            (CExpr::Int(0), _) | (_, CExpr::Int(0)) => return CExpr::Int(0),
            (CExpr::Int(x), CExpr::Int(y)) => return CExpr::Int(x * y),
            _ => {}
        }
        CExpr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: CExpr, b: CExpr) -> CExpr {
        if let (CExpr::Int(x), CExpr::Int(y)) = (&a, &b) {
            return CExpr::Int(x - y);
        }
        if matches!(&b, CExpr::Int(0)) {
            return a;
        }
        CExpr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a / b` (C integer division on non-negative indices).
    pub fn div(a: CExpr, b: CExpr) -> CExpr {
        if matches!(&b, CExpr::Int(1)) {
            return a;
        }
        if let (CExpr::Int(x), CExpr::Int(y)) = (&a, &b) {
            if *y != 0 {
                return CExpr::Int(x.div_euclid(*y));
            }
        }
        CExpr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// `a % b`.
    pub fn rem(a: CExpr, b: CExpr) -> CExpr {
        if matches!(&b, CExpr::Int(1)) {
            return CExpr::Int(0);
        }
        if let (CExpr::Int(x), CExpr::Int(y)) = (&a, &b) {
            if *y != 0 {
                return CExpr::Int(x.rem_euclid(*y));
            }
        }
        CExpr::Bin(BinOp::Mod, Box::new(a), Box::new(b))
    }

    /// `min(a, b)`.
    pub fn min(a: CExpr, b: CExpr) -> CExpr {
        if let (CExpr::Int(x), CExpr::Int(y)) = (&a, &b) {
            return CExpr::Int(*x.min(y));
        }
        CExpr::Bin(BinOp::Min, Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    pub fn max(a: CExpr, b: CExpr) -> CExpr {
        if let (CExpr::Int(x), CExpr::Int(y)) = (&a, &b) {
            return CExpr::Int(*x.max(y));
        }
        CExpr::Bin(BinOp::Max, Box::new(a), Box::new(b))
    }

    /// A scalar literal.
    pub fn scalar(s: Scalar) -> CExpr {
        match s {
            Scalar::F32(v) => CExpr::Float(v),
            Scalar::I32(v) => CExpr::Int(v as i64),
            Scalar::Bool(v) => CExpr::Bool(v),
        }
    }

    /// Returns the constant integer if this expression is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CExpr::Int(v) => Some(*v),
            _ => None,
        }
    }
}

/// A C statement.
#[derive(Debug, Clone)]
pub enum CStmt {
    /// `ty var = init;` (or bare declaration when `init` is `None`).
    DeclScalar {
        /// The declared variable.
        var: VarRef,
        /// Its type.
        ty: CType,
        /// Optional initialiser.
        init: Option<CExpr>,
    },
    /// A private array declaration `ty var[len];`.
    DeclPrivateArray {
        /// The declared variable.
        var: VarRef,
        /// Element type.
        ty: CType,
        /// Number of elements (compile-time constant).
        len: usize,
    },
    /// `var = value;`
    Assign {
        /// Assigned variable.
        var: VarRef,
        /// New value.
        value: CExpr,
    },
    /// `buf[idx] = value;`
    Store {
        /// Target buffer.
        buf: VarRef,
        /// Its address space.
        space: AddressSpace,
        /// Linear element index.
        idx: CExpr,
        /// Stored value.
        value: CExpr,
    },
    /// `for (int var = init; var < bound; var += step) { body }`
    For {
        /// Induction variable (declared `int`).
        var: VarRef,
        /// Initial value.
        init: CExpr,
        /// Exclusive upper bound (`var < bound`).
        bound: CExpr,
        /// Increment added each iteration.
        step: CExpr,
        /// Loop body.
        body: Vec<CStmt>,
    },
    /// `if (cond) { then } else { else }`.
    If {
        /// Condition.
        cond: CExpr,
        /// Then-branch.
        then_: Vec<CStmt>,
        /// Else-branch (possibly empty).
        else_: Vec<CStmt>,
    },
    /// `barrier(CLK_LOCAL_MEM_FENCE | …)`.
    Barrier {
        /// Fence local memory.
        local: bool,
        /// Fence global memory.
        global: bool,
    },
    /// A `//` comment line (used to annotate generated structure).
    Comment(String),
}

/// A kernel buffer parameter.
#[derive(Debug, Clone)]
pub struct KernelParam {
    /// The buffer variable.
    pub var: VarRef,
    /// Element type.
    pub elem: CType,
    /// Number of elements.
    pub len: usize,
    /// `true` for the output buffer.
    pub is_output: bool,
}

/// A `__local` buffer declaration.
#[derive(Debug, Clone)]
pub struct LocalBuffer {
    /// The buffer variable.
    pub var: VarRef,
    /// Element type.
    pub elem: CType,
    /// Number of elements (compile-time constant).
    pub len: usize,
}

/// A compiled OpenCL kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel (C function) name.
    pub name: String,
    /// Buffer parameters, inputs first, output(s) last.
    pub params: Vec<KernelParam>,
    /// Local-memory buffers.
    pub locals: Vec<LocalBuffer>,
    /// Kernel body.
    pub body: Vec<CStmt>,
    /// User functions referenced by the body (printed as definitions).
    pub user_funs: Vec<Arc<UserFun>>,
}

/// Deterministic execution-slot assignment for every variable a kernel
/// declares: scalars (including `for`-loop induction variables) and private
/// arrays, in **pre-order declaration order** over the statement tree.
///
/// This is the stable contract interpreters and plan compilers share: a
/// variable's slot index depends only on the kernel body, never on who walks
/// it, so a bytecode plan and the reference tree interpreter resolve
/// `VarRef`s to the same dense indices.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    /// Scalar variables; the vector position is the slot index.
    pub scalars: Vec<(VarRef, CType)>,
    /// Private arrays as `(variable, element type, length)`; the vector
    /// position is the slot index.
    pub priv_arrays: Vec<(VarRef, CType, usize)>,
}

impl SlotMap {
    fn collect(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            match s {
                CStmt::DeclScalar { var, ty, .. } => self.add_scalar(var, *ty),
                CStmt::DeclPrivateArray { var, ty, len }
                    if !self.priv_arrays.iter().any(|(v, _, _)| v.id() == var.id()) =>
                {
                    self.priv_arrays.push((var.clone(), *ty, *len));
                }
                CStmt::For { var, body, .. } => {
                    self.add_scalar(var, CType::Int);
                    self.collect(body);
                }
                CStmt::If { then_, else_, .. } => {
                    self.collect(then_);
                    self.collect(else_);
                }
                _ => {}
            }
        }
    }

    fn add_scalar(&mut self, var: &VarRef, ty: CType) {
        if !self.scalars.iter().any(|(v, _)| v.id() == var.id()) {
            self.scalars.push((var.clone(), ty));
        }
    }
}

impl Kernel {
    /// Total local memory consumed, in bytes.
    pub fn local_bytes(&self) -> usize {
        self.locals.iter().map(|l| l.len * 4).sum()
    }

    /// The kernel's stable slot assignment (see [`SlotMap`]).
    pub fn slot_map(&self) -> SlotMap {
        let mut m = SlotMap::default();
        m.collect(&self.body);
        m
    }

    /// The output parameter.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has no output (compiler invariant).
    pub fn output(&self) -> &KernelParam {
        self.params
            .iter()
            .find(|p| p.is_output)
            .expect("kernel has an output parameter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_unique() {
        let a = VarRef::fresh("i");
        let b = VarRef::fresh("i");
        assert_ne!(a, b);
        assert_ne!(a.c_name(), b.c_name());
    }

    #[test]
    fn constant_folding_in_index_math() {
        let e = CExpr::add(CExpr::Int(2), CExpr::Int(3));
        assert_eq!(e.as_int(), Some(5));
        let e = CExpr::mul(CExpr::Int(1), CExpr::Var(VarRef::fresh("x")));
        assert!(matches!(e, CExpr::Var(_)));
        let e = CExpr::add(CExpr::Var(VarRef::fresh("x")), CExpr::Int(0));
        assert!(matches!(e, CExpr::Var(_)));
        assert_eq!(CExpr::div(CExpr::Int(7), CExpr::Int(2)).as_int(), Some(3));
        assert_eq!(CExpr::rem(CExpr::Int(7), CExpr::Int(2)).as_int(), Some(1));
        assert_eq!(CExpr::min(CExpr::Int(7), CExpr::Int(2)).as_int(), Some(2));
        assert_eq!(CExpr::max(CExpr::Int(7), CExpr::Int(2)).as_int(), Some(7));
    }

    #[test]
    fn address_space_qualifiers() {
        assert_eq!(AddressSpace::Global.c_qualifier(), "__global");
        assert_eq!(AddressSpace::Local.c_qualifier(), "__local");
    }
}
