//! Compilation of low-level Lift expressions into OpenCL kernels.
//!
//! The compiler walks a lowered expression twice-over in one pass:
//!
//! * *producer* positions (`compile_out`) — `map*`/`join`/`transpose`/… —
//!   emit loops and stores through an output [`View`];
//! * *source* positions (`compile_val`) — `pad`/`slide`/`zip`/… — build
//!   input [`View`]s without emitting code, exactly as §5 describes.
//!
//! Memory is explicit: a `map` that is not at the output position must be
//! wrapped in `toLocal`/`toPrivate` (or be the kernel result) so that every
//! intermediate buffer in the generated code is visible in the source
//! expression, mirroring Lift's design.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lift_arith::{ArithExpr, Bindings};
use lift_core::expr::{Expr, FunDecl, Param, ParamRef};
use lift_core::pattern::{MapKind, Pattern, ReduceKind};
use lift_core::typecheck::{typecheck, TypeError};
use lift_core::types::Type;

use crate::clike::{
    AddressSpace, CExpr, CStmt, CType, Kernel, KernelParam, LocalBuffer, VarRef, WorkItemFn,
};
use crate::view::{apply_steps_write, LayoutStep, View, ViewError};

/// A code generation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    msg: String,
}

impl CodegenError {
    fn new(msg: impl Into<String>) -> Self {
        CodegenError { msg: msg.into() }
    }

    /// The diagnostic message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.msg)
    }
}

impl Error for CodegenError {}

impl From<TypeError> for CodegenError {
    fn from(e: TypeError) -> Self {
        CodegenError::new(e.to_string())
    }
}

impl From<ViewError> for CodegenError {
    fn from(e: ViewError) -> Self {
        CodegenError::new(e.to_string())
    }
}

macro_rules! bail {
    ($($arg:tt)*) => {
        return Err(CodegenError::new(format!($($arg)*)))
    };
}

/// Substitutes arithmetic variables (input sizes, tunables) throughout a
/// program: in every type, every pattern parameter, and every nested lambda.
///
/// Returns a structurally identical program whose parameters are *fresh*
/// (types may have changed, and parameter identity must follow).
pub fn substitute_sizes(f: &FunDecl, bindings: &Bindings) -> FunDecl {
    let map: std::collections::BTreeMap<lift_arith::Name, ArithExpr> = bindings
        .iter()
        .map(|(k, v)| (lift_arith::Name::from(k), ArithExpr::from(v)))
        .collect();
    let mut pmap = HashMap::new();
    subst_fun(f, &map, &mut pmap)
}

type SizeMap = std::collections::BTreeMap<lift_arith::Name, ArithExpr>;

fn subst_type(t: &Type, map: &SizeMap) -> Type {
    match t {
        Type::Scalar(_) => t.clone(),
        Type::Tuple(ts) => Type::Tuple(ts.iter().map(|x| subst_type(x, map)).collect()),
        Type::Array(elem, n) => Type::Array(Box::new(subst_type(elem, map)), n.substitute_all(map)),
    }
}

fn subst_fun(f: &FunDecl, map: &SizeMap, pmap: &mut HashMap<u32, ParamRef>) -> FunDecl {
    match f {
        FunDecl::Lambda(l) => {
            let params: Vec<ParamRef> = l
                .params
                .iter()
                .map(|p| {
                    let fresh = Param::fresh(p.name(), subst_type(p.ty(), map));
                    pmap.insert(p.id(), fresh.clone());
                    fresh
                })
                .collect();
            let body = subst_expr(&l.body, map, pmap);
            FunDecl::lambda(params, body)
        }
        FunDecl::UserFun(_) => f.clone(),
        FunDecl::Pattern(p) => FunDecl::pattern(subst_pattern(p, map, pmap)),
    }
}

fn subst_expr(e: &Expr, map: &SizeMap, pmap: &mut HashMap<u32, ParamRef>) -> Expr {
    match e {
        Expr::Param(p) => match pmap.get(&p.id()) {
            Some(fresh) => Expr::Param(fresh.clone()),
            None => e.clone(),
        },
        Expr::Literal(_) => e.clone(),
        Expr::Apply(app) => {
            let fun = subst_fun(&app.fun, map, pmap);
            let args = app
                .args
                .iter()
                .map(|a| subst_expr(a, map, pmap))
                .collect::<Vec<_>>();
            Expr::apply(fun, args)
        }
    }
}

fn subst_pattern(p: &Pattern, map: &SizeMap, pmap: &mut HashMap<u32, ParamRef>) -> Pattern {
    let s = |e: &ArithExpr| e.substitute_all(map);
    match p {
        Pattern::Map { kind, f } => Pattern::Map {
            kind: *kind,
            f: subst_fun(f, map, pmap),
        },
        Pattern::Reduce { kind, f } => Pattern::Reduce {
            kind: *kind,
            f: subst_fun(f, map, pmap),
        },
        Pattern::Zip { arity } => Pattern::Zip { arity: *arity },
        Pattern::Split { chunk } => Pattern::Split { chunk: s(chunk) },
        Pattern::Join => Pattern::Join,
        Pattern::Transpose => Pattern::Transpose,
        Pattern::Slide { size, step } => Pattern::Slide {
            size: s(size),
            step: s(step),
        },
        Pattern::Pad {
            left,
            right,
            boundary,
        } => Pattern::Pad {
            left: s(left),
            right: s(right),
            boundary: *boundary,
        },
        Pattern::PadValue { left, right, value } => Pattern::PadValue {
            left: s(left),
            right: s(right),
            value: *value,
        },
        Pattern::At { index } => Pattern::At { index: s(index) },
        Pattern::Get { index } => Pattern::Get { index: *index },
        Pattern::ArrayGen { fun, sizes } => Pattern::ArrayGen {
            fun: fun.clone(),
            sizes: sizes.iter().map(s).collect(),
        },
        Pattern::Iterate { times, f } => Pattern::Iterate {
            times: s(times),
            f: subst_fun(f, map, pmap),
        },
        Pattern::ToLocal { f } => Pattern::ToLocal {
            f: subst_fun(f, map, pmap),
        },
        Pattern::ToGlobal { f } => Pattern::ToGlobal {
            f: subst_fun(f, map, pmap),
        },
        Pattern::ToPrivate { f } => Pattern::ToPrivate {
            f: subst_fun(f, map, pmap),
        },
        Pattern::Id => Pattern::Id,
    }
}

/// A compiled value: either a scalar C expression or a lazily-indexed view.
#[derive(Debug, Clone)]
enum Val {
    Scalar(CExpr),
    View { view: View, ty: Type },
}

struct Cg {
    bindings: HashMap<u32, Val>,
    locals: Vec<LocalBuffer>,
    /// Nesting depth of `mapLcl` loops currently being compiled. Barriers
    /// may only be emitted after the *outermost* local-parallel loop — a
    /// barrier inside an inner (divergent) loop would be illegal OpenCL.
    lcl_depth: usize,
}

fn size_usize(n: &ArithExpr) -> Result<usize, CodegenError> {
    n.eval(&Bindings::new())
        .map_err(|_| {
            CodegenError::new(format!(
                "size `{n}` is not concrete; substitute sizes first"
            ))
        })
        .and_then(|v| {
            if v < 0 {
                bail!("size `{n}` evaluated to negative {v}")
            }
            Ok(v as usize)
        })
}

fn concrete_shape(ty: &Type) -> Result<Vec<usize>, CodegenError> {
    ty.shape().iter().map(size_usize).collect()
}

fn ctype_of(ty: &Type) -> Result<CType, CodegenError> {
    match ty.leaf_scalar() {
        Some(k) => Ok(CType::from_kind(k)),
        None => bail!("cannot lay out non-scalar leaf type {ty}"),
    }
}

/// Compiles a lowered, fully-concrete program into an OpenCL kernel.
///
/// `prog` must be a top-level lambda whose parameters are the input arrays;
/// its result becomes the kernel's output buffer.
///
/// # Errors
///
/// Fails if the program is ill-typed, contains non-lowered (`Par`)
/// primitives, non-concrete sizes, or an unsupported shape (e.g. a
/// materialising `map` without `toLocal`/`toPrivate`).
pub fn compile_kernel(name: &str, prog: &FunDecl) -> Result<Kernel, CodegenError> {
    let lam = match prog {
        FunDecl::Lambda(l) => l,
        _ => bail!("kernel must be a top-level lambda"),
    };
    let mut cg = Cg {
        bindings: HashMap::new(),
        locals: Vec::new(),
        lcl_depth: 0,
    };
    let mut params = Vec::new();
    for p in &lam.params {
        let shape = concrete_shape(p.ty())?;
        if shape.is_empty() {
            bail!("kernel parameter `{}` must be an array", p.name());
        }
        let elem = ctype_of(p.ty())?;
        let var = VarRef::fresh(p.name());
        params.push(KernelParam {
            var: var.clone(),
            elem,
            len: shape.iter().product(),
            is_output: false,
        });
        cg.bindings.insert(
            p.id(),
            Val::View {
                view: View::Mem {
                    buf: var,
                    space: AddressSpace::Global,
                    shape,
                },
                ty: p.ty().clone(),
            },
        );
    }
    let out_ty = typecheck(&lam.body)?;
    let out_shape = concrete_shape(&out_ty)?;
    if out_shape.is_empty() {
        bail!("kernel result must be an array, got {out_ty}");
    }
    let out_var = VarRef::fresh("out");
    params.push(KernelParam {
        var: out_var.clone(),
        elem: ctype_of(&out_ty)?,
        len: out_shape.iter().product(),
        is_output: true,
    });
    let out_view = View::Mem {
        buf: out_var,
        space: AddressSpace::Global,
        shape: out_shape,
    };

    let mut body = Vec::new();
    compile_out(&mut cg, &lam.body, &out_view, &mut body)?;

    let mut user_funs = Vec::new();
    collect_user_funs(&body, &mut user_funs);

    Ok(Kernel {
        name: name.to_string(),
        params,
        locals: cg.locals,
        body,
        user_funs,
    })
}

/// Compiles `e` (array-typed) so that its elements are written through `out`.
fn compile_out(
    cg: &mut Cg,
    e: &Expr,
    out: &View,
    stmts: &mut Vec<CStmt>,
) -> Result<(), CodegenError> {
    let ty = typecheck(e)?;
    if ty.as_array().is_none() {
        // Scalar result written at a fully-fixed output position.
        let v = compile_scalar(cg, e, stmts)?;
        stmts.push(out.write(&[], v)?);
        return Ok(());
    }

    if let Expr::Apply(app) = e {
        match &app.fun {
            FunDecl::Lambda(l) => {
                bind_lambda_args(cg, l, &app.args, stmts)?;
                return compile_out(cg, &l.body, out, stmts);
            }
            FunDecl::Pattern(p) => match p.as_ref() {
                Pattern::Map { kind, f } => {
                    // Layout-only maps (`map(transpose)`, `map(join)`, …) on
                    // the output path reshape the destination instead of
                    // emitting loops. Only un-lowered maps take this route:
                    // a lowered map (`mapGlb` etc.) expresses an explicit
                    // parallelisation decision and keeps its loop.
                    let arg_ty = typecheck(&app.args[0])?;
                    if *kind == MapKind::Par {
                        if let Some(elem_ty) = arg_ty.as_array().map(|(el, _)| el.clone()) {
                            if let Some((steps, _)) = try_layout_steps(f, &elem_ty)? {
                                // Verify writability up-front for a clear error.
                                apply_steps_write(
                                    &steps,
                                    View::Fixed {
                                        index: CExpr::Int(0),
                                        base: Box::new(out.clone()),
                                    },
                                )?;
                                let out2 = View::MapStepsW {
                                    steps: std::sync::Arc::new(steps),
                                    base: Box::new(out.clone()),
                                };
                                return compile_out(cg, &app.args[0], &out2, stmts);
                            }
                        }
                    }
                    return compile_map(cg, *kind, f, &app.args[0], &ty, out, stmts);
                }
                Pattern::Join => {
                    let inner_ty = typecheck(&app.args[0])?;
                    let m = size_usize(
                        inner_ty
                            .as_array()
                            .and_then(|(el, _)| el.as_array())
                            .map(|(_, m)| m)
                            .ok_or_else(|| CodegenError::new("join of non-nested array"))?,
                    )?;
                    let out2 = View::Split {
                        chunk: m,
                        base: Box::new(out.clone()),
                    };
                    return compile_out(cg, &app.args[0], &out2, stmts);
                }
                Pattern::Split { chunk } => {
                    let m = size_usize(chunk)?;
                    let out2 = View::Join {
                        inner: m,
                        base: Box::new(out.clone()),
                    };
                    return compile_out(cg, &app.args[0], &out2, stmts);
                }
                Pattern::Transpose => {
                    let out2 = View::Transpose {
                        base: Box::new(out.clone()),
                    };
                    return compile_out(cg, &app.args[0], &out2, stmts);
                }
                Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                    // At the output position the destination is already
                    // fixed; the wrapper only matters mid-expression.
                    let rebuilt = Expr::apply(f.clone(), app.args.clone());
                    return compile_out(cg, &rebuilt, out, stmts);
                }
                Pattern::Id => {
                    return compile_out(cg, &app.args[0], out, stmts);
                }
                _ => {}
            },
            FunDecl::UserFun(_) => {}
        }
    }

    // Fallback: a pure layout transform (e.g. the kernel is just
    // `slide(...)`): materialise it with sequential copy loops.
    let val = compile_val(cg, e, stmts)?;
    match val {
        Val::View { view, ty } => {
            let shape = concrete_shape(&ty)?;
            materialise_copy(&view, out, &shape, stmts)
        }
        Val::Scalar(_) => bail!("array-typed expression compiled to a scalar"),
    }
}

/// Emits nested sequential loops copying `src` into `out` element-wise.
fn materialise_copy(
    src: &View,
    out: &View,
    shape: &[usize],
    stmts: &mut Vec<CStmt>,
) -> Result<(), CodegenError> {
    fn rec(
        src: &View,
        out: &View,
        shape: &[usize],
        idxs: &mut Vec<CExpr>,
        stmts: &mut Vec<CStmt>,
    ) -> Result<(), CodegenError> {
        if idxs.len() == shape.len() {
            let v = src.read(idxs)?;
            stmts.push(out.write(idxs, v)?);
            return Ok(());
        }
        let var = VarRef::fresh("c");
        let mut body = Vec::new();
        idxs.push(CExpr::Var(var.clone()));
        rec(src, out, shape, idxs, &mut body)?;
        idxs.pop();
        stmts.push(CStmt::For {
            var,
            init: CExpr::Int(0),
            bound: CExpr::Int(shape[idxs.len()] as i64),
            step: CExpr::Int(1),
            body,
        });
        Ok(())
    }
    let mut idxs = Vec::new();
    rec(src, out, shape, &mut idxs, stmts)
}

fn loop_range(kind: MapKind, n: usize) -> (CExpr, CExpr, CExpr) {
    let bound = CExpr::Int(n as i64);
    match kind {
        MapKind::Seq | MapKind::SeqUnroll | MapKind::Par => (CExpr::Int(0), bound, CExpr::Int(1)),
        MapKind::Glb(d) => (
            CExpr::WorkItem(WorkItemFn::GlobalId, d),
            bound,
            CExpr::WorkItem(WorkItemFn::GlobalSize, d),
        ),
        MapKind::Wrg(d) => (
            CExpr::WorkItem(WorkItemFn::GroupId, d),
            bound,
            CExpr::WorkItem(WorkItemFn::NumGroups, d),
        ),
        MapKind::Lcl(d) => (
            CExpr::WorkItem(WorkItemFn::LocalId, d),
            bound,
            CExpr::WorkItem(WorkItemFn::LocalSize, d),
        ),
    }
}

fn compile_map(
    cg: &mut Cg,
    kind: MapKind,
    f: &FunDecl,
    arr: &Expr,
    result_ty: &Type,
    out: &View,
    stmts: &mut Vec<CStmt>,
) -> Result<(), CodegenError> {
    if kind == MapKind::Par {
        bail!("high-level `map` reached codegen; lower it to mapGlb/mapWrg/mapLcl/mapSeq first");
    }
    let (out_elem_ty, n) = result_ty
        .as_array()
        .map(|(el, n)| (el.clone(), n.clone()))
        .ok_or_else(|| CodegenError::new("map result must be an array"))?;
    let n = size_usize(&n)?;
    let arr_val = compile_val(cg, arr, stmts)?;
    let (arr_view, arr_ty) = match arr_val {
        Val::View { view, ty } => (view, ty),
        Val::Scalar(_) => bail!("map input compiled to a scalar"),
    };
    let in_elem_ty = arr_ty
        .as_array()
        .map(|(el, _)| el.clone())
        .ok_or_else(|| CodegenError::new("map input must be an array"))?;

    let emit_body = |cg: &mut Cg, idx: CExpr, stmts: &mut Vec<CStmt>| -> Result<(), CodegenError> {
        let elem_view = View::Fixed {
            index: idx.clone(),
            base: Box::new(arr_view.clone()),
        };
        let out_elem = View::Fixed {
            index: idx,
            base: Box::new(out.clone()),
        };
        let p = Param::fresh("e", in_elem_ty.clone());
        cg.bindings.insert(
            p.id(),
            Val::View {
                view: elem_view,
                ty: in_elem_ty.clone(),
            },
        );
        let body_expr = Expr::apply(f.clone(), [Expr::Param(p)]);
        if out_elem_ty.as_array().is_none() {
            let v = compile_scalar(cg, &body_expr, stmts)?;
            stmts.push(out_elem.write(&[], v)?);
        } else {
            compile_out(cg, &body_expr, &out_elem, stmts)?;
        }
        Ok(())
    };

    if kind == MapKind::SeqUnroll {
        for j in 0..n {
            emit_body(cg, CExpr::Int(j as i64), stmts)?;
        }
        return Ok(());
    }

    let var = VarRef::fresh(match kind {
        MapKind::Glb(_) => "gid",
        MapKind::Wrg(_) => "wg",
        MapKind::Lcl(_) => "lid",
        _ => "i",
    });
    let (init, bound, step) = loop_range(kind, n);
    let is_lcl = matches!(kind, MapKind::Lcl(_));
    if is_lcl {
        cg.lcl_depth += 1;
    }
    let mut body = Vec::new();
    let body_result = emit_body(cg, CExpr::Var(var.clone()), &mut body);
    if is_lcl {
        cg.lcl_depth -= 1;
    }
    body_result?;
    stmts.push(CStmt::For {
        var,
        init,
        bound,
        step,
        body,
    });
    if is_lcl && cg.lcl_depth == 0 {
        // Work-group synchronisation after the outermost local-parallel
        // phase (a barrier inside an inner, divergent loop would be
        // illegal OpenCL).
        stmts.push(CStmt::Barrier {
            local: true,
            global: false,
        });
    }
    Ok(())
}

fn bind_lambda_args(
    cg: &mut Cg,
    l: &lift_core::expr::Lambda,
    args: &[Expr],
    stmts: &mut Vec<CStmt>,
) -> Result<(), CodegenError> {
    if l.params.len() != args.len() {
        bail!(
            "lambda of {} params applied to {} args",
            l.params.len(),
            args.len()
        );
    }
    for (p, a) in l.params.iter().zip(args) {
        let v = compile_val(cg, a, stmts)?;
        cg.bindings.insert(p.id(), v);
    }
    Ok(())
}

/// Compiles `e` into a value (view or scalar) without fixing an output.
fn compile_val(cg: &mut Cg, e: &Expr, stmts: &mut Vec<CStmt>) -> Result<Val, CodegenError> {
    match e {
        Expr::Param(p) => cg
            .bindings
            .get(&p.id())
            .cloned()
            .ok_or_else(|| CodegenError::new(format!("unbound parameter `{}`", p.name()))),
        Expr::Literal(s) => Ok(Val::Scalar(CExpr::scalar(*s))),
        Expr::Apply(app) => match &app.fun {
            FunDecl::Lambda(l) => {
                bind_lambda_args(cg, l, &app.args, stmts)?;
                compile_val(cg, &l.body, stmts)
            }
            FunDecl::UserFun(u) => {
                let mut args = Vec::with_capacity(app.args.len());
                for a in &app.args {
                    args.push(compile_scalar(cg, a, stmts)?);
                }
                Ok(Val::Scalar(CExpr::Call(u.clone(), args)))
            }
            FunDecl::Pattern(p) => compile_pattern_val(cg, p, app, stmts),
        },
    }
}

fn view_of(cg: &mut Cg, e: &Expr, stmts: &mut Vec<CStmt>) -> Result<(View, Type), CodegenError> {
    match compile_val(cg, e, stmts)? {
        Val::View { view, ty } => Ok((view, ty)),
        Val::Scalar(_) => bail!("expected an array value"),
    }
}

fn compile_pattern_val(
    cg: &mut Cg,
    p: &Pattern,
    app: &lift_core::expr::Apply,
    stmts: &mut Vec<CStmt>,
) -> Result<Val, CodegenError> {
    let result_ty = typecheck(&Expr::Apply(Box::new(app.clone())))?;
    match p {
        Pattern::Slide { step, .. } => {
            let (base, _) = view_of(cg, &app.args[0], stmts)?;
            Ok(Val::View {
                view: View::Slide {
                    step: size_usize(step)?,
                    base: Box::new(base),
                },
                ty: result_ty,
            })
        }
        Pattern::Pad { left, boundary, .. } => {
            let (base, in_ty) = view_of(cg, &app.args[0], stmts)?;
            let n = size_usize(in_ty.as_array().map(|(_, n)| n).expect("array"))?;
            Ok(Val::View {
                view: View::Pad {
                    left: size_usize(left)?,
                    n,
                    boundary: *boundary,
                    base: Box::new(base),
                },
                ty: result_ty,
            })
        }
        Pattern::PadValue { left, value, .. } => {
            let (base, in_ty) = view_of(cg, &app.args[0], stmts)?;
            let n = size_usize(in_ty.as_array().map(|(_, n)| n).expect("array"))?;
            Ok(Val::View {
                view: View::PadValue {
                    left: size_usize(left)?,
                    n,
                    value: *value,
                    base: Box::new(base),
                },
                ty: result_ty,
            })
        }
        Pattern::Split { chunk } => {
            let (base, _) = view_of(cg, &app.args[0], stmts)?;
            Ok(Val::View {
                view: View::Split {
                    chunk: size_usize(chunk)?,
                    base: Box::new(base),
                },
                ty: result_ty,
            })
        }
        Pattern::Join => {
            let (base, in_ty) = view_of(cg, &app.args[0], stmts)?;
            let m = size_usize(
                in_ty
                    .as_array()
                    .and_then(|(el, _)| el.as_array())
                    .map(|(_, m)| m)
                    .ok_or_else(|| CodegenError::new("join of non-nested array"))?,
            )?;
            Ok(Val::View {
                view: View::Join {
                    inner: m,
                    base: Box::new(base),
                },
                ty: result_ty,
            })
        }
        Pattern::Transpose => {
            let (base, _) = view_of(cg, &app.args[0], stmts)?;
            Ok(Val::View {
                view: View::Transpose {
                    base: Box::new(base),
                },
                ty: result_ty,
            })
        }
        Pattern::Zip { .. } => {
            let mut comps = Vec::with_capacity(app.args.len());
            for a in &app.args {
                comps.push(view_of(cg, a, stmts)?.0);
            }
            Ok(Val::View {
                view: View::Zip { components: comps },
                ty: result_ty,
            })
        }
        Pattern::At { index } => {
            let (base, _) = view_of(cg, &app.args[0], stmts)?;
            let view = View::Fixed {
                index: CExpr::Int(size_usize(index)? as i64),
                base: Box::new(base),
            };
            if result_ty.as_array().is_none() && result_ty.as_tuple().is_none() {
                Ok(Val::Scalar(view.read(&[])?))
            } else {
                Ok(Val::View {
                    view,
                    ty: result_ty,
                })
            }
        }
        Pattern::Get { index } => {
            let val = compile_val(cg, &app.args[0], stmts)?;
            match val {
                Val::View { view, .. } => {
                    let g = View::Get {
                        index: *index,
                        base: Box::new(view),
                    };
                    if result_ty.as_array().is_none() {
                        Ok(Val::Scalar(g.read(&[])?))
                    } else {
                        Ok(Val::View {
                            view: g,
                            ty: result_ty,
                        })
                    }
                }
                Val::Scalar(_) => bail!("`get` applied to a scalar"),
            }
        }
        Pattern::ArrayGen { fun, sizes } => {
            let sizes: Result<Vec<usize>, _> = sizes.iter().map(size_usize).collect();
            Ok(Val::View {
                view: View::Gen {
                    fun: fun.clone(),
                    sizes: sizes?,
                },
                ty: result_ty,
            })
        }
        Pattern::Reduce { kind, f } => {
            compile_reduce(cg, *kind, f, &app.args[0], &app.args[1], stmts)
        }
        Pattern::Id => compile_val(cg, &app.args[0], stmts),
        Pattern::ToLocal { f } => {
            materialise_to(cg, AddressSpace::Local, f, app, &result_ty, stmts)
        }
        Pattern::ToPrivate { f } => {
            materialise_to(cg, AddressSpace::Private, f, app, &result_ty, stmts)
        }
        Pattern::ToGlobal { f } => bail!(
            "`toGlobal({f})` mid-expression is unsupported: global temporaries would need a \
             second kernel; restructure the program"
        ),
        Pattern::Map { f, .. } => {
            // Layout-only maps are lazily-applied view transforms (this is
            // what `slide2`/`slide3`/`pad2`/`pad3` compile into).
            let (base, in_ty) = view_of(cg, &app.args[0], stmts)?;
            let elem_ty = in_ty
                .as_array()
                .map(|(el, _)| el.clone())
                .ok_or_else(|| CodegenError::new("map input must be an array"))?;
            match try_layout_steps(f, &elem_ty)? {
                Some((steps, _)) => Ok(Val::View {
                    view: View::MapSteps {
                        steps: std::sync::Arc::new(steps),
                        base: Box::new(base),
                    },
                    ty: result_ty,
                }),
                None => bail!(
                    "a materialising `map` mid-expression must be wrapped in \
                     toLocal/toPrivate so its memory is explicit"
                ),
            }
        }
        Pattern::Iterate { .. } => {
            bail!("`iterate` is executed on the host (repeated kernel launches), not in a kernel")
        }
    }
}

/// Allocates a buffer in `space`, compiles `f(args…)` into it, and returns
/// the buffer view.
fn materialise_to(
    cg: &mut Cg,
    space: AddressSpace,
    f: &FunDecl,
    app: &lift_core::expr::Apply,
    result_ty: &Type,
    stmts: &mut Vec<CStmt>,
) -> Result<Val, CodegenError> {
    let shape = concrete_shape(result_ty)?;
    let elem = ctype_of(result_ty)?;
    let len: usize = shape.iter().product();
    let var = VarRef::fresh(match space {
        AddressSpace::Local => "tile_l",
        AddressSpace::Private => "priv",
        AddressSpace::Global => "tmp_g",
    });
    match space {
        AddressSpace::Local => cg.locals.push(LocalBuffer {
            var: var.clone(),
            elem,
            len,
        }),
        AddressSpace::Private => stmts.push(CStmt::DeclPrivateArray {
            var: var.clone(),
            ty: elem,
            len,
        }),
        AddressSpace::Global => bail!("global temporaries are not supported"),
    }
    let buf_view = View::Mem {
        buf: var,
        space,
        shape,
    };
    let rebuilt = Expr::apply(f.clone(), app.args.clone());
    compile_out(cg, &rebuilt, &buf_view, stmts)?;
    Ok(Val::View {
        view: buf_view,
        ty: result_ty.clone(),
    })
}

/// Attempts to compile a *layout-only* function into [`LayoutStep`]s.
///
/// Returns `Ok(None)` when `f` computes (contains user functions, reduces,
/// memory annotations, …) and therefore cannot stay lazy.
fn try_layout_steps(
    f: &FunDecl,
    in_ty: &Type,
) -> Result<Option<(Vec<LayoutStep>, Type)>, CodegenError> {
    match f {
        FunDecl::UserFun(_) => Ok(None),
        FunDecl::Pattern(p) => match p.as_ref() {
            Pattern::Id => Ok(Some((Vec::new(), in_ty.clone()))),
            Pattern::Transpose
            | Pattern::Slide { .. }
            | Pattern::Pad { .. }
            | Pattern::PadValue { .. }
            | Pattern::Split { .. }
            | Pattern::Join
            | Pattern::Get { .. } => {
                let out_ty = lift_core::typecheck::apply_fun(f, std::slice::from_ref(in_ty))?;
                Ok(Some((vec![step_of_pattern(p, in_ty)?], out_ty)))
            }
            Pattern::Map { f: g, .. } => {
                let elem_ty = match in_ty.as_array() {
                    Some((el, _)) => el.clone(),
                    None => return Ok(None),
                };
                match try_layout_steps(g, &elem_ty)? {
                    Some((inner, _)) => {
                        let out_ty =
                            lift_core::typecheck::apply_fun(f, std::slice::from_ref(in_ty))?;
                        Ok(Some((vec![LayoutStep::Map(inner)], out_ty)))
                    }
                    None => Ok(None),
                }
            }
            _ => Ok(None),
        },
        FunDecl::Lambda(l) => {
            if l.params.len() != 1 {
                return Ok(None);
            }
            layout_steps_of_expr(&l.body, l.params[0].id(), in_ty)
        }
    }
}

/// Walks a lambda body that applies layout primitives to its parameter,
/// collecting steps innermost-first.
fn layout_steps_of_expr(
    e: &Expr,
    param_id: u32,
    param_ty: &Type,
) -> Result<Option<(Vec<LayoutStep>, Type)>, CodegenError> {
    match e {
        Expr::Param(p) if p.id() == param_id => Ok(Some((Vec::new(), param_ty.clone()))),
        Expr::Apply(app) if app.args.len() == 1 => {
            let inner = match layout_steps_of_expr(&app.args[0], param_id, param_ty)? {
                Some(x) => x,
                None => return Ok(None),
            };
            let (mut steps, cur_ty) = inner;
            match try_layout_steps(&app.fun, &cur_ty)? {
                Some((mut more, out_ty)) => {
                    steps.append(&mut more);
                    Ok(Some((steps, out_ty)))
                }
                None => Ok(None),
            }
        }
        // zip(e1, …, ek): every branch must itself be a layout chain over
        // the same parameter (usually starting with a `get`).
        Expr::Apply(app) if matches!(app.fun.as_pattern(), Some(Pattern::Zip { .. })) => {
            let mut branches = Vec::with_capacity(app.args.len());
            let mut out_elems = Vec::with_capacity(app.args.len());
            let mut len: Option<ArithExpr> = None;
            for a in &app.args {
                match layout_steps_of_expr(a, param_id, param_ty)? {
                    Some((steps, ty)) => {
                        let (el, n) = match ty.as_array() {
                            Some((el, n)) => (el.clone(), n.clone()),
                            None => return Ok(None),
                        };
                        if let Some(l) = &len {
                            if l != &n {
                                return Ok(None);
                            }
                        } else {
                            len = Some(n);
                        }
                        branches.push(steps);
                        out_elems.push(el);
                    }
                    None => return Ok(None),
                }
            }
            let out_ty = Type::array(Type::Tuple(out_elems), len.expect("zip arity >= 2"));
            Ok(Some((vec![LayoutStep::ZipN(branches)], out_ty)))
        }
        _ => Ok(None),
    }
}

fn step_of_pattern(p: &Pattern, in_ty: &Type) -> Result<LayoutStep, CodegenError> {
    let dim0 = |t: &Type| -> Result<usize, CodegenError> {
        size_usize(
            t.as_array()
                .map(|(_, n)| n)
                .ok_or_else(|| CodegenError::new("layout step on non-array"))?,
        )
    };
    Ok(match p {
        Pattern::Transpose => LayoutStep::Transpose,
        Pattern::Slide { step, .. } => LayoutStep::Slide {
            step: size_usize(step)?,
        },
        Pattern::Pad { left, boundary, .. } => LayoutStep::Pad {
            left: size_usize(left)?,
            n: dim0(in_ty)?,
            boundary: *boundary,
        },
        Pattern::PadValue { left, value, .. } => LayoutStep::PadValue {
            left: size_usize(left)?,
            n: dim0(in_ty)?,
            value: *value,
        },
        Pattern::Split { chunk } => LayoutStep::Split {
            chunk: size_usize(chunk)?,
        },
        Pattern::Join => LayoutStep::Join {
            inner: size_usize(
                in_ty
                    .as_array()
                    .and_then(|(el, _)| el.as_array())
                    .map(|(_, m)| m)
                    .ok_or_else(|| CodegenError::new("join of non-nested array"))?,
            )?,
        },
        Pattern::Get { index } => LayoutStep::Get(*index),
        other => bail!("`{}` is not a layout step", other.name()),
    })
}

fn compile_reduce(
    cg: &mut Cg,
    kind: ReduceKind,
    f: &FunDecl,
    init: &Expr,
    arr: &Expr,
    stmts: &mut Vec<CStmt>,
) -> Result<Val, CodegenError> {
    if kind == ReduceKind::Par {
        bail!("high-level `reduce` reached codegen; lower it to reduceSeq/reduceUnroll first");
    }
    let init_ty = typecheck(init)?;
    let acc_ct = match init_ty.as_scalar() {
        Some(k) => CType::from_kind(k),
        None => bail!("reduce accumulator must be scalar, got {init_ty}"),
    };
    let init_val = compile_scalar(cg, init, stmts)?;
    let acc = VarRef::fresh("acc");
    stmts.push(CStmt::DeclScalar {
        var: acc.clone(),
        ty: acc_ct,
        init: Some(init_val),
    });

    let (arr_view, arr_ty) = view_of(cg, arr, stmts)?;
    let (elem_ty, n) = arr_ty
        .as_array()
        .map(|(el, n)| (el.clone(), n.clone()))
        .ok_or_else(|| CodegenError::new("reduce input must be an array"))?;
    let n = size_usize(&n)?;

    let emit_step = |cg: &mut Cg, idx: CExpr, stmts: &mut Vec<CStmt>| -> Result<(), CodegenError> {
        let elem_view = View::Fixed {
            index: idx,
            base: Box::new(arr_view.clone()),
        };
        let pa = Param::fresh("acc", init_ty.clone());
        let pe = Param::fresh("e", elem_ty.clone());
        cg.bindings
            .insert(pa.id(), Val::Scalar(CExpr::Var(acc.clone())));
        cg.bindings.insert(
            pe.id(),
            Val::View {
                view: elem_view,
                ty: elem_ty.clone(),
            },
        );
        let step_expr = Expr::apply(f.clone(), [Expr::Param(pa), Expr::Param(pe)]);
        let v = compile_scalar(cg, &step_expr, stmts)?;
        stmts.push(CStmt::Assign {
            var: acc.clone(),
            value: v,
        });
        Ok(())
    };

    match kind {
        ReduceKind::SeqUnroll => {
            for j in 0..n {
                emit_step(cg, CExpr::Int(j as i64), stmts)?;
            }
        }
        ReduceKind::Seq => {
            let var = VarRef::fresh("r");
            let mut body = Vec::new();
            emit_step(cg, CExpr::Var(var.clone()), &mut body)?;
            stmts.push(CStmt::For {
                var,
                init: CExpr::Int(0),
                bound: CExpr::Int(n as i64),
                step: CExpr::Int(1),
                body,
            });
        }
        ReduceKind::Par => unreachable!("checked above"),
    }
    Ok(Val::Scalar(CExpr::Var(acc)))
}

fn compile_scalar(cg: &mut Cg, e: &Expr, stmts: &mut Vec<CStmt>) -> Result<CExpr, CodegenError> {
    match compile_val(cg, e, stmts)? {
        Val::Scalar(c) => Ok(c),
        Val::View { view, ty } => {
            if ty.as_array().is_some() {
                bail!("expected a scalar, found array of type {ty}")
            }
            Ok(view.read(&[])?)
        }
    }
}

fn collect_user_funs(stmts: &[CStmt], out: &mut Vec<std::sync::Arc<lift_core::userfun::UserFun>>) {
    fn from_expr(e: &CExpr, out: &mut Vec<std::sync::Arc<lift_core::userfun::UserFun>>) {
        match e {
            CExpr::Call(f, args) => {
                if !out.iter().any(|g| g.name() == f.name()) {
                    out.push(f.clone());
                }
                for a in args {
                    from_expr(a, out);
                }
            }
            CExpr::Bin(_, a, b) => {
                from_expr(a, out);
                from_expr(b, out);
            }
            CExpr::Un(_, a) => from_expr(a, out),
            CExpr::Load { idx, .. } => from_expr(idx, out),
            CExpr::Select { cond, then_, else_ } => {
                from_expr(cond, out);
                from_expr(then_, out);
                from_expr(else_, out);
            }
            CExpr::Cast(_, a) => from_expr(a, out),
            _ => {}
        }
    }
    for s in stmts {
        match s {
            CStmt::DeclScalar { init: Some(e), .. } => from_expr(e, out),
            CStmt::Assign { value, .. } => from_expr(value, out),
            CStmt::Store { idx, value, .. } => {
                from_expr(idx, out);
                from_expr(value, out);
            }
            CStmt::For {
                init,
                bound,
                step,
                body,
                ..
            } => {
                from_expr(init, out);
                from_expr(bound, out);
                from_expr(step, out);
                collect_user_funs(body, out);
            }
            CStmt::If { cond, then_, else_ } => {
                from_expr(cond, out);
                collect_user_funs(then_, out);
                collect_user_funs(else_, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::prelude::*;

    fn listing2_lowered(n: i64) -> FunDecl {
        // mapGlb0(reduceSeq(add, 0.0), slide(3, 1, pad(1, 1, clamp, A)))
        lam_named("A", Type::array(Type::f32(), n), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce_seq(add_f32(), Expr::f32(0.0), nbh)
            });
            map_glb(0, sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        })
    }

    #[test]
    fn compiles_listing2() {
        let k = compile_kernel("jacobi3pt", &listing2_lowered(16)).expect("compiles");
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.params[0].len, 16);
        assert!(k.params[1].is_output);
        assert_eq!(k.params[1].len, 16);
        assert_eq!(k.user_funs.len(), 1);
        assert_eq!(k.user_funs[0].name(), "add");
        // One global loop with a reduction loop inside.
        assert!(matches!(&k.body[0], CStmt::For { .. }));
    }

    #[test]
    fn par_compute_map_is_rejected() {
        // A computing `map` (not a pure layout transform) must be lowered
        // before codegen.
        let double = lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x]));
        let f = lam_named("A", Type::array(Type::f32(), 8), |a| map(double, a));
        let err = compile_kernel("k", &f).unwrap_err();
        assert!(err.message().contains("lower"));
    }

    #[test]
    fn par_layout_map_compiles_as_view() {
        // map(transpose) stays lazy: no loops beyond the copy of the result.
        let f = lam_named("A", Type::array_2d(Type::f32(), 4, 8), |a| {
            map_glb(
                0,
                lam(Type::array(Type::f32(), 4), |row| {
                    map_seq(
                        lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(0.0)])),
                        row,
                    )
                }),
                transpose(a),
            )
        });
        let k = compile_kernel("k", &f).expect("compiles");
        assert!(k.locals.is_empty());
    }

    #[test]
    fn symbolic_sizes_are_rejected() {
        let f = lam_named("A", Type::array(Type::f32(), ArithExpr::var("N")), |a| {
            map_glb(0, id(), a)
        });
        let err = compile_kernel("k", &f).unwrap_err();
        assert!(err.message().contains("concrete") || err.message().contains("size"));
    }

    #[test]
    fn substitute_sizes_makes_concrete() {
        let f = lam_named("A", Type::array(Type::f32(), ArithExpr::var("N")), |a| {
            map_glb(0, id(), a)
        });
        let env = lift_arith::Bindings::from_iter([("N", 32)]);
        let g = substitute_sizes(&f, &env);
        let k = compile_kernel("k", &g).expect("compiles after substitution");
        assert_eq!(k.params[0].len, 32);
    }

    #[test]
    fn tiled_local_memory_kernel_compiles() {
        // join(mapWrg0(tile => mapLcl0(reduceSeq) ∘ slide ∘ toLocal(mapLcl0(id)), slide(6,4, pad(...))))
        let n = 18i64;
        let f = lam_named("A", Type::array(Type::f32(), n), |a| {
            let tile_ty = Type::array(Type::f32(), 6);
            let per_tile = lam(tile_ty, |tile| {
                let copied = Expr::apply(to_local(fun_map_lcl_id()), [tile]);
                let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                    reduce_seq(add_f32(), Expr::f32(0.0), nbh)
                });
                map_lcl(0, sum, slide(3, 1, copied))
            });
            join(map_wrg(
                0,
                per_tile,
                slide(6, 4, pad(1, 1, Boundary::Clamp, a)),
            ))
        });
        fn fun_map_lcl_id() -> FunDecl {
            FunDecl::pattern(lift_core::pattern::Pattern::Map {
                kind: lift_core::pattern::MapKind::Lcl(0),
                f: lift_core::build::id(),
            })
        }
        let k = compile_kernel("tiled", &f).expect("compiles");
        assert_eq!(k.locals.len(), 1);
        assert_eq!(k.locals[0].len, 6);
        // Barriers must separate the copy and compute phases.
        fn count_barriers(stmts: &[CStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    CStmt::Barrier { .. } => 1,
                    CStmt::For { body, .. } => count_barriers(body),
                    CStmt::If { then_, else_, .. } => count_barriers(then_) + count_barriers(else_),
                    _ => 0,
                })
                .sum()
        }
        assert!(count_barriers(&k.body) >= 2);
    }

    #[test]
    fn zip_get_kernel_compiles() {
        let n = 8i64;
        let f = lam2_named(
            "A",
            Type::array(Type::f32(), n),
            "B",
            Type::array(Type::f32(), n),
            |a, b| {
                let tup = Type::Tuple(vec![Type::f32(), Type::f32()]);
                let f = lam(tup, |t| call(&add_f32(), [get(0, t.clone()), get(1, t)]));
                map_glb(0, f, zip2(a, b))
            },
        );
        let k = compile_kernel("zipped", &f).expect("compiles");
        assert_eq!(k.params.len(), 3);
    }

    #[test]
    fn mid_expression_compute_map_without_memory_is_rejected() {
        let f = lam_named("A", Type::array(Type::f32(), 8), |a| {
            // join(slide over a *computed* array) forces the inner map into
            // a source position with no memory annotation.
            let double = lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x]));
            let mapped = map_seq(double, a);
            join(slide(2, 2, mapped))
        });
        let err = compile_kernel("k", &f).unwrap_err();
        assert!(err.message().contains("toLocal"), "got: {err}");
    }
}
