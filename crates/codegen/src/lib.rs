//! View-based OpenCL-C code generation for low-level Lift expressions (§5 of
//! the paper).
//!
//! A Lift program whose `map`s and `reduce`s have been lowered to
//! OpenCL-specific forms (`mapGlb`, `mapWrg`, `mapLcl`, `mapSeq`,
//! `reduceSeq`, …) is compiled here into a [`Kernel`]: a small OpenCL-C AST
//! that can be
//!
//! * pretty-printed to compilable OpenCL C source ([`Kernel::to_source`]),
//!   and
//! * executed directly by the virtual device in `lift-oclsim`.
//!
//! The data-layout primitives `pad`, `slide`, `split`, `join`, `transpose`,
//! `zip`, `get`, `at` and `array` **generate no code and move no data**: they
//! are compiled into [`view::View`]s — compile-time index transformations
//! applied when an element is finally read (or written). This is the paper's
//! key compilation device: *"the slide primitive does not physically copy
//! created neighborhoods into memory"*; accesses to the same element of
//! different neighbourhoods hit the same physical location.
//!
//! Compilation requires every array size to be **concrete**: substitute input
//! sizes and tuner parameters into the program first (see
//! [`compile::substitute_sizes`]).

#![forbid(unsafe_code)]

pub mod clike;
pub mod compile;
pub mod print;
pub mod view;

pub use clike::{
    AddressSpace, BinOp, CExpr, CStmt, CType, Kernel, KernelParam, LocalBuffer, SlotMap, UnOp,
    VarRef, WorkItemFn,
};
pub use compile::{compile_kernel, substitute_sizes, CodegenError};
