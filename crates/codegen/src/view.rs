//! The view system: compile-time data-layout transformations (§5).
//!
//! A [`View`] denotes an n-dimensional array *as a function from indices to
//! element expressions*. The layout primitives (`pad`, `slide`, `split`,
//! `join`, `transpose`, `zip`, `get`, `at`, `array`) each add one node: no
//! data ever moves until a scalar leaf is [`read`](View::read) — which emits
//! the final load expression with all index arithmetic folded in — or
//! [`written`](View::write).
//!
//! Reads and writes share the same index algebra: writing through
//! `join`/`split`/`transpose` on the output path applies the identical
//! transformation. Views that duplicate elements (`slide`, `pad`) are
//! read-only; attempting to write through them is a compiler error caught by
//! [`View::write`].

use std::sync::Arc;

use lift_core::pattern::Boundary;
use lift_core::scalar::Scalar;
use lift_core::userfun::UserFun;

use crate::clike::{AddressSpace, BinOp, CExpr, CStmt, VarRef};

/// A lazily-indexed array (or tuple-of-arrays) description.
#[derive(Debug, Clone)]
pub enum View {
    /// A linear buffer in memory holding a row-major array of shape `shape`.
    Mem {
        /// The buffer variable.
        buf: VarRef,
        /// Its address space.
        space: AddressSpace,
        /// Row-major dimension sizes, outermost first.
        shape: Vec<usize>,
    },
    /// A generated array: element `(i…)` is `fun(i…, sizes…)` (§3.5's
    /// `array` primitive).
    Gen {
        /// The generator function.
        fun: Arc<UserFun>,
        /// The generated shape.
        sizes: Vec<usize>,
    },
    /// Partial application of the outermost index (a `map` binding its
    /// element, or `at(i)`).
    Fixed {
        /// The applied index.
        index: CExpr,
        /// The underlying view.
        base: Box<View>,
    },
    /// `pad(l, r, h)` applied to the outermost dimension of `base` (which
    /// has size `n` there).
    Pad {
        /// Left padding amount.
        left: usize,
        /// Size of the unpadded dimension.
        n: usize,
        /// Re-indexing function.
        boundary: Boundary,
        /// The underlying view.
        base: Box<View>,
    },
    /// `padValue(l, r, c)` on the outermost dimension.
    PadValue {
        /// Left padding amount.
        left: usize,
        /// Size of the unpadded dimension.
        n: usize,
        /// Constant produced out of bounds.
        value: Scalar,
        /// The underlying view.
        base: Box<View>,
    },
    /// `slide(size, step)`: element `(i, j, rest…)` maps to
    /// `(i·step + j, rest…)` of `base`.
    Slide {
        /// Window step.
        step: usize,
        /// The underlying view.
        base: Box<View>,
    },
    /// `split(m)`: `(i, j, rest…) ↦ (i·m + j, rest…)`.
    Split {
        /// Chunk size `m`.
        chunk: usize,
        /// The underlying view.
        base: Box<View>,
    },
    /// `join` of inner size `m`: `(i, rest…) ↦ (i/m, i%m, rest…)`.
    Join {
        /// Inner dimension size `m`.
        inner: usize,
        /// The underlying view.
        base: Box<View>,
    },
    /// `transpose`: `(i, j, rest…) ↦ (j, i, rest…)`.
    Transpose {
        /// The underlying view.
        base: Box<View>,
    },
    /// `zip`: an array of tuples; component `c` element `(i…)` is
    /// `components[c]` element `(i…)`.
    Zip {
        /// The zipped views (equal shapes).
        components: Vec<View>,
    },
    /// `get(c)` on a tuple(-array) view.
    Get {
        /// Selected component.
        index: usize,
        /// The tuple-producing view.
        base: Box<View>,
    },
    /// A *layout-only* `map`: element `i` is `base`'s element `i` with
    /// `steps` applied lazily (how `map(transpose)`, `map(slide)` and the
    /// n-dimensional combinators compile — no loops, no data movement).
    MapSteps {
        /// The per-element transformation.
        steps: std::sync::Arc<Vec<LayoutStep>>,
        /// The mapped view.
        base: Box<View>,
    },
    /// The write-side dual of [`View::MapSteps`], used for the output
    /// reassembly of the 2D/3D tiling rule (`map(join)`, `map(transpose)` on
    /// the result path).
    MapStepsW {
        /// The per-element transformation of the *producer*.
        steps: std::sync::Arc<Vec<LayoutStep>>,
        /// The final destination view.
        base: Box<View>,
    },
}

/// One step of a compiled layout-only function (sizes already concrete).
///
/// A layout function `λx. t_k(…t_1(x))` compiles to `[step(t_1), …,
/// step(t_k)]`; applying the steps to a view wraps it innermost-first.
#[derive(Debug, Clone)]
pub enum LayoutStep {
    /// `slide(size, step)` — read-only.
    Slide {
        /// Window step.
        step: usize,
    },
    /// `pad(l, r, h)` — read-only.
    Pad {
        /// Left padding.
        left: usize,
        /// Unpadded size.
        n: usize,
        /// Re-indexing function.
        boundary: Boundary,
    },
    /// `padValue(l, r, c)` — read-only.
    PadValue {
        /// Left padding.
        left: usize,
        /// Unpadded size.
        n: usize,
        /// Out-of-bounds constant.
        value: Scalar,
    },
    /// `split(m)`.
    Split {
        /// Chunk size.
        chunk: usize,
    },
    /// `join` with inner size `m`.
    Join {
        /// Inner dimension size.
        inner: usize,
    },
    /// `transpose`.
    Transpose,
    /// A nested layout-only `map`.
    Map(Vec<LayoutStep>),
    /// `get(c)` — tuple component selection.
    Get(usize),
    /// `zip(e1, …, ek)` where each branch applies its own steps to the
    /// current (tuple-typed) view — how `zip2_2d`/`zip3_3d` stay lazy.
    ZipN(Vec<Vec<LayoutStep>>),
}

/// Applies layout steps (innermost-first) to a read view.
pub fn apply_steps(steps: &[LayoutStep], v: View) -> View {
    let mut v = v;
    for s in steps {
        v = match s {
            LayoutStep::Slide { step } => View::Slide {
                step: *step,
                base: Box::new(v),
            },
            LayoutStep::Pad { left, n, boundary } => View::Pad {
                left: *left,
                n: *n,
                boundary: *boundary,
                base: Box::new(v),
            },
            LayoutStep::PadValue { left, n, value } => View::PadValue {
                left: *left,
                n: *n,
                value: *value,
                base: Box::new(v),
            },
            LayoutStep::Split { chunk } => View::Split {
                chunk: *chunk,
                base: Box::new(v),
            },
            LayoutStep::Join { inner } => View::Join {
                inner: *inner,
                base: Box::new(v),
            },
            LayoutStep::Transpose => View::Transpose { base: Box::new(v) },
            LayoutStep::Map(inner) => View::MapSteps {
                steps: std::sync::Arc::new(inner.clone()),
                base: Box::new(v),
            },
            LayoutStep::Get(c) => View::Get {
                index: *c,
                base: Box::new(v),
            },
            LayoutStep::ZipN(branches) => View::Zip {
                components: branches.iter().map(|b| apply_steps(b, v.clone())).collect(),
            },
        };
    }
    v
}

/// Applies layout steps to a *write* view: the producer's outermost
/// transformation wraps the destination first, with each step replaced by
/// its write-side dual (`join` ↔ `split`).
///
/// # Errors
///
/// Fails on element-duplicating steps (`slide`, `pad`) — those have no
/// write-side meaning.
pub fn apply_steps_write(steps: &[LayoutStep], out: View) -> Result<View, ViewError> {
    let mut out = out;
    for s in steps.iter().rev() {
        out = match s {
            LayoutStep::Join { inner } => View::Split {
                chunk: *inner,
                base: Box::new(out),
            },
            LayoutStep::Split { chunk } => View::Join {
                inner: *chunk,
                base: Box::new(out),
            },
            LayoutStep::Transpose => View::Transpose {
                base: Box::new(out),
            },
            LayoutStep::Map(inner) => View::MapStepsW {
                steps: std::sync::Arc::new(inner.clone()),
                base: Box::new(out),
            },
            other => {
                return Err(ViewError(format!(
                    "layout step {other:?} cannot appear on a write path"
                )))
            }
        };
    }
    Ok(out)
}

/// Failure to resolve a view access (always a compiler bug or an unsupported
/// program shape, reported as [`crate::CodegenError`] by the compiler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewError(pub String);

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "view error: {}", self.0)
    }
}

impl std::error::Error for ViewError {}

fn reindex(boundary: Boundary, i: CExpr, left: usize, n: usize) -> CExpr {
    let shifted = CExpr::sub(i, CExpr::Int(left as i64));
    match boundary {
        Boundary::Clamp => CExpr::min(CExpr::max(shifted, CExpr::Int(0)), CExpr::Int(n as i64 - 1)),
        Boundary::Mirror => {
            // m = (i-l) mod 2n; m < n ? m : 2n-1-m   (see Boundary::reindex)
            let two_n = CExpr::Int(2 * n as i64);
            // C `%` is not Euclidean for negatives: add 2n first. The shifted
            // index is ≥ -left ≥ -n in well-formed programs.
            let m = CExpr::rem(CExpr::add(shifted, two_n.clone()), two_n);
            CExpr::Select {
                cond: Box::new(CExpr::Bin(
                    BinOp::Lt,
                    Box::new(m.clone()),
                    Box::new(CExpr::Int(n as i64)),
                )),
                then_: Box::new(m.clone()),
                else_: Box::new(CExpr::sub(CExpr::Int(2 * n as i64 - 1), m)),
            }
        }
        Boundary::Wrap => {
            let nn = CExpr::Int(n as i64);
            CExpr::rem(CExpr::add(shifted, nn.clone()), nn)
        }
    }
}

impl View {
    /// Reads the scalar element at `indices` (outermost first), emitting the
    /// fully-folded access expression.
    ///
    /// # Errors
    ///
    /// Fails if the index count does not exhaust the view's dimensions or a
    /// tuple component is accessed without a `get`.
    pub fn read(&self, indices: &[CExpr]) -> Result<CExpr, ViewError> {
        self.read_inner(None, indices)
    }

    /// Reads component `c` of the tuple element at `indices`.
    fn read_inner(&self, component: Option<usize>, idxs: &[CExpr]) -> Result<CExpr, ViewError> {
        match self {
            View::Mem { buf, space, shape } => {
                if component.is_some() {
                    return Err(ViewError(
                        "tuple component access reached a raw memory view".into(),
                    ));
                }
                if idxs.len() != shape.len() {
                    return Err(ViewError(format!(
                        "memory view of {} dims read with {} indices",
                        shape.len(),
                        idxs.len()
                    )));
                }
                Ok(CExpr::Load {
                    buf: buf.clone(),
                    space: *space,
                    idx: Box::new(linearise(idxs, shape)),
                })
            }
            View::Gen { fun, sizes } => {
                if component.is_some() {
                    return Err(ViewError("tuple access on a generated array".into()));
                }
                if idxs.len() != sizes.len() {
                    return Err(ViewError(format!(
                        "generator of {} dims read with {} indices",
                        sizes.len(),
                        idxs.len()
                    )));
                }
                let mut args: Vec<CExpr> = idxs.to_vec();
                args.extend(sizes.iter().map(|s| CExpr::Int(*s as i64)));
                Ok(CExpr::Call(fun.clone(), args))
            }
            View::Fixed { index, base } => {
                let mut all = Vec::with_capacity(idxs.len() + 1);
                all.push(index.clone());
                all.extend_from_slice(idxs);
                base.read_inner(component, &all)
            }
            View::Pad {
                left,
                n,
                boundary,
                base,
            } => {
                let (i, rest) = split_first(idxs)?;
                let mut all = vec![reindex(*boundary, i.clone(), *left, *n)];
                all.extend_from_slice(rest);
                base.read_inner(component, &all)
            }
            View::PadValue {
                left,
                n,
                value,
                base,
            } => {
                let (i, rest) = split_first(idxs)?;
                let shifted = CExpr::sub(i.clone(), CExpr::Int(*left as i64));
                let mut all = vec![shifted.clone()];
                all.extend_from_slice(rest);
                // In-bounds test on the *padded* index.
                let cond = CExpr::Bin(
                    BinOp::And,
                    Box::new(CExpr::Bin(
                        BinOp::Ge,
                        Box::new(i.clone()),
                        Box::new(CExpr::Int(*left as i64)),
                    )),
                    Box::new(CExpr::Bin(
                        BinOp::Lt,
                        Box::new(i.clone()),
                        Box::new(CExpr::Int((*left + *n) as i64)),
                    )),
                );
                // Elide the select when the index is a constant we can decide.
                if let Some(ci) = i.as_int() {
                    return if ci >= *left as i64 && ci < (*left + *n) as i64 {
                        base.read_inner(component, &all)
                    } else {
                        Ok(CExpr::scalar(*value))
                    };
                }
                Ok(CExpr::Select {
                    cond: Box::new(cond),
                    then_: Box::new(base.read_inner(component, &all)?),
                    else_: Box::new(CExpr::scalar(*value)),
                })
            }
            View::Slide { step, base } => {
                let (i, rest) = split_two(idxs)?;
                let mut all = vec![CExpr::add(
                    CExpr::mul(i.0.clone(), CExpr::Int(*step as i64)),
                    i.1.clone(),
                )];
                all.extend_from_slice(rest);
                base.read_inner(component, &all)
            }
            View::Split { chunk, base } => {
                let (i, rest) = split_two(idxs)?;
                let mut all = vec![CExpr::add(
                    CExpr::mul(i.0.clone(), CExpr::Int(*chunk as i64)),
                    i.1.clone(),
                )];
                all.extend_from_slice(rest);
                base.read_inner(component, &all)
            }
            View::Join { inner, base } => {
                let (i, rest) = split_first(idxs)?;
                let m = CExpr::Int(*inner as i64);
                let mut all = vec![CExpr::div(i.clone(), m.clone()), CExpr::rem(i.clone(), m)];
                all.extend_from_slice(rest);
                base.read_inner(component, &all)
            }
            View::Transpose { base } => {
                let (i, rest) = split_two(idxs)?;
                let mut all = vec![i.1.clone(), i.0.clone()];
                all.extend_from_slice(rest);
                base.read_inner(component, &all)
            }
            View::Zip { components } => {
                let c = component.ok_or_else(|| {
                    ViewError("zip element read without a tuple component (missing get)".into())
                })?;
                let v = components.get(c).ok_or_else(|| {
                    ViewError(format!(
                        "get({c}) out of bounds for zip of {} views",
                        components.len()
                    ))
                })?;
                v.read_inner(None, idxs)
            }
            View::Get { index, base } => {
                if component.is_some() {
                    return Err(ViewError("nested tuple-of-tuple access unsupported".into()));
                }
                base.read_inner(Some(*index), idxs)
            }
            View::MapSteps { steps, base } => {
                let (i, rest) = split_first(idxs)?;
                let sub = apply_steps(
                    steps,
                    View::Fixed {
                        index: i.clone(),
                        base: base.clone(),
                    },
                );
                sub.read_inner(component, rest)
            }
            View::MapStepsW { .. } => Err(ViewError("write-side layout map cannot be read".into())),
        }
    }

    /// Emits the store of `value` at `indices`.
    ///
    /// # Errors
    ///
    /// Fails when the write path contains element-duplicating views
    /// (`slide`, `pad`), tuples, or generators — those are read-only.
    pub fn write(&self, indices: &[CExpr], value: CExpr) -> Result<CStmt, ViewError> {
        match self {
            View::Mem { buf, space, shape } => {
                if indices.len() != shape.len() {
                    return Err(ViewError(format!(
                        "memory view of {} dims written with {} indices",
                        shape.len(),
                        indices.len()
                    )));
                }
                Ok(CStmt::Store {
                    buf: buf.clone(),
                    space: *space,
                    idx: linearise(indices, shape),
                    value,
                })
            }
            View::Fixed { index, base } => {
                let mut all = Vec::with_capacity(indices.len() + 1);
                all.push(index.clone());
                all.extend_from_slice(indices);
                base.write(&all, value)
            }
            View::Split { chunk, base } => {
                let (i, rest) = split_two(indices)?;
                let mut all = vec![CExpr::add(
                    CExpr::mul(i.0.clone(), CExpr::Int(*chunk as i64)),
                    i.1.clone(),
                )];
                all.extend_from_slice(rest);
                base.write(&all, value)
            }
            View::Join { inner, base } => {
                let (i, rest) = split_first(indices)?;
                let m = CExpr::Int(*inner as i64);
                let mut all = vec![CExpr::div(i.clone(), m.clone()), CExpr::rem(i.clone(), m)];
                all.extend_from_slice(rest);
                base.write(&all, value)
            }
            View::Transpose { base } => {
                let (i, rest) = split_two(indices)?;
                let mut all = vec![i.1.clone(), i.0.clone()];
                all.extend_from_slice(rest);
                base.write(&all, value)
            }
            View::MapStepsW { steps, base } => {
                let (i, rest) = split_first(indices)?;
                let sub = apply_steps_write(
                    steps,
                    View::Fixed {
                        index: i.clone(),
                        base: base.clone(),
                    },
                )?;
                sub.write(rest, value)
            }
            other => Err(ViewError(format!(
                "cannot write through a {} view",
                view_kind_name(other)
            ))),
        }
    }

    /// The address space of the root memory buffer, if this view chain is
    /// memory-rooted.
    pub fn root_space(&self) -> Option<AddressSpace> {
        match self {
            View::Mem { space, .. } => Some(*space),
            View::Gen { .. } => None,
            View::Zip { components } => components.first().and_then(View::root_space),
            View::Fixed { base, .. }
            | View::Pad { base, .. }
            | View::PadValue { base, .. }
            | View::Slide { base, .. }
            | View::Split { base, .. }
            | View::Join { base, .. }
            | View::Transpose { base }
            | View::Get { base, .. }
            | View::MapSteps { base, .. }
            | View::MapStepsW { base, .. } => base.root_space(),
        }
    }
}

fn view_kind_name(v: &View) -> &'static str {
    match v {
        View::Mem { .. } => "memory",
        View::Gen { .. } => "generator",
        View::Fixed { .. } => "fixed-index",
        View::Pad { .. } => "pad",
        View::PadValue { .. } => "padValue",
        View::Slide { .. } => "slide",
        View::Split { .. } => "split",
        View::Join { .. } => "join",
        View::Transpose { .. } => "transpose",
        View::Zip { .. } => "zip",
        View::Get { .. } => "get",
        View::MapSteps { .. } => "map-layout",
        View::MapStepsW { .. } => "map-layout-write",
    }
}

fn split_first(idxs: &[CExpr]) -> Result<(&CExpr, &[CExpr]), ViewError> {
    idxs.split_first()
        .ok_or_else(|| ViewError("view access ran out of indices".into()))
}

fn split_two(idxs: &[CExpr]) -> Result<((&CExpr, &CExpr), &[CExpr]), ViewError> {
    match idxs {
        [a, b, rest @ ..] => Ok(((a, b), rest)),
        _ => Err(ViewError(
            "view access needs two indices at this node".into(),
        )),
    }
}

/// Row-major linearisation `((i0·d1 + i1)·d2 + i2)…`.
fn linearise(idxs: &[CExpr], shape: &[usize]) -> CExpr {
    let mut acc = idxs[0].clone();
    for (i, d) in idxs.iter().zip(shape).skip(1) {
        acc = CExpr::add(CExpr::mul(acc, CExpr::Int(*d as i64)), i.clone());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(shape: &[usize]) -> View {
        View::Mem {
            buf: VarRef::fresh("A"),
            space: AddressSpace::Global,
            shape: shape.to_vec(),
        }
    }

    fn idx(i: i64) -> CExpr {
        CExpr::Int(i)
    }

    fn read_linear(v: &View, idxs: &[i64]) -> i64 {
        let idxs: Vec<CExpr> = idxs.iter().map(|i| idx(*i)).collect();
        match v.read(&idxs).expect("read resolves") {
            CExpr::Load { idx, .. } => idx.as_int().expect("constant index"),
            other => panic!("expected a load, got {other:?}"),
        }
    }

    #[test]
    fn mem_row_major() {
        let v = mem(&[4, 8]);
        assert_eq!(read_linear(&v, &[0, 0]), 0);
        assert_eq!(read_linear(&v, &[0, 7]), 7);
        assert_eq!(read_linear(&v, &[1, 0]), 8);
        assert_eq!(read_linear(&v, &[3, 5]), 29);
    }

    #[test]
    fn slide_overlaps() {
        // slide(3, 1) over [T]_10: window i, offset j → i + j.
        let v = View::Slide {
            step: 1,
            base: Box::new(mem(&[10])),
        };
        assert_eq!(read_linear(&v, &[0, 0]), 0);
        assert_eq!(read_linear(&v, &[0, 2]), 2);
        assert_eq!(read_linear(&v, &[1, 1]), 2); // shared with previous window
        assert_eq!(read_linear(&v, &[7, 2]), 9);
    }

    #[test]
    fn pad_clamp_folds_constants() {
        // pad(1,1,clamp) over [T]_10, then read padded index 0 → clamp(-1)=0.
        let v = View::Pad {
            left: 1,
            n: 10,
            boundary: Boundary::Clamp,
            base: Box::new(mem(&[10])),
        };
        assert_eq!(read_linear(&v, &[0]), 0);
        assert_eq!(read_linear(&v, &[1]), 0);
        assert_eq!(read_linear(&v, &[11]), 9);
        assert_eq!(read_linear(&v, &[5]), 4);
    }

    #[test]
    fn pad_value_elides_select_on_constants() {
        let v = View::PadValue {
            left: 1,
            n: 4,
            value: Scalar::F32(9.0),
            base: Box::new(mem(&[4])),
        };
        // Out of bounds constant index → the constant itself, no select.
        let out = v.read(&[idx(0)]).expect("resolves");
        assert!(matches!(out, CExpr::Float(x) if x == 9.0));
        // In bounds → plain load.
        let inb = v.read(&[idx(2)]).expect("resolves");
        assert!(matches!(inb, CExpr::Load { .. }));
    }

    #[test]
    fn split_join_inverse() {
        // join(split(4, A)) reads linearly.
        let v = View::Join {
            inner: 4,
            base: Box::new(View::Split {
                chunk: 4,
                base: Box::new(mem(&[16])),
            }),
        };
        for i in 0..16 {
            assert_eq!(read_linear(&v, &[i]), i);
        }
    }

    #[test]
    fn transpose_swaps() {
        let v = View::Transpose {
            base: Box::new(mem(&[4, 8])),
        };
        // transposed[ i ][ j ] = base[ j ][ i ]
        assert_eq!(read_linear(&v, &[5, 2]), 2 * 8 + 5);
    }

    #[test]
    fn zip_get_selects_component() {
        let a = mem(&[8]);
        let b = mem(&[8]);
        let b_buf = match &b {
            View::Mem { buf, .. } => buf.clone(),
            _ => unreachable!(),
        };
        let v = View::Get {
            index: 1,
            base: Box::new(View::Fixed {
                index: idx(3),
                base: Box::new(View::Zip {
                    components: vec![a, b],
                }),
            }),
        };
        match v.read(&[]).expect("resolves") {
            CExpr::Load { buf, idx, .. } => {
                assert_eq!(buf, b_buf);
                assert_eq!(idx.as_int(), Some(3));
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn zip_without_get_errors() {
        let v = View::Fixed {
            index: idx(0),
            base: Box::new(View::Zip {
                components: vec![mem(&[4]), mem(&[4])],
            }),
        };
        assert!(v.read(&[]).is_err());
    }

    #[test]
    fn write_through_slide_rejected() {
        let v = View::Slide {
            step: 1,
            base: Box::new(mem(&[10])),
        };
        let err = v.write(&[idx(0), idx(0)], CExpr::Float(1.0)).unwrap_err();
        assert!(err.0.contains("slide"));
    }

    #[test]
    fn write_through_split_matches_read() {
        // Writing join output: out'[i][j] = out[i*4+j].
        let v = View::Split {
            chunk: 4,
            base: Box::new(mem(&[16])),
        };
        match v.write(&[idx(2), idx(3)], CExpr::Float(0.0)).expect("ok") {
            CStmt::Store { idx, .. } => assert_eq!(idx.as_int(), Some(11)),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn mirror_and_wrap_generate_index_math() {
        for b in [Boundary::Mirror, Boundary::Wrap] {
            let v = View::Pad {
                left: 2,
                n: 10,
                boundary: b,
                base: Box::new(mem(&[10])),
            };
            // Symbolic index: expression must build without error.
            let i = CExpr::Var(VarRef::fresh("i"));
            let out = v.read(&[i]).expect("resolves");
            assert!(!matches!(out, CExpr::Int(_)));
        }
    }

    #[test]
    fn wrong_index_count_errors() {
        let v = mem(&[4, 4]);
        assert!(v.read(&[idx(0)]).is_err());
        assert!(v.read(&[idx(0), idx(0), idx(0)]).is_err());
    }
}
