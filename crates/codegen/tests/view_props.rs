//! Property tests for the view system: a random stack of layout
//! transformations read through [`View`] index algebra must agree with an
//! independent *materialising* model at every element.
//!
//! Cases are drawn from a deterministic SplitMix64 stream (no external
//! property-testing framework is available), so every run checks the same
//! fixed set of layout stacks and is exactly reproducible.

use lift_codegen::clike::{AddressSpace, BinOp, CExpr, VarRef};
use lift_codegen::view::View;
use lift_core::pattern::Boundary;
use lift_core::scalar::Scalar;

/// An independently-modelled array: flat data + shape, transformed
/// *materially* (the oracle the lazy views must match).
#[derive(Debug, Clone)]
struct Model {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Model {
    fn outer(&self) -> usize {
        self.shape[0]
    }

    fn row(&self) -> usize {
        self.shape.iter().skip(1).product::<usize>().max(1)
    }

    fn pad(&self, l: usize, r: usize, b: Boundary) -> Model {
        let n = self.outer() as i64;
        let row = self.row();
        let mut data = Vec::new();
        for i in -(l as i64)..n + r as i64 {
            let src = b.reindex(i, n) as usize;
            data.extend_from_slice(&self.data[src * row..(src + 1) * row]);
        }
        let mut shape = self.shape.clone();
        shape[0] += l + r;
        Model { data, shape }
    }

    fn pad_value(&self, l: usize, r: usize, v: f32) -> Model {
        let row = self.row();
        let mut data = vec![v; l * row];
        data.extend_from_slice(&self.data);
        data.extend(std::iter::repeat_n(v, r * row));
        let mut shape = self.shape.clone();
        shape[0] += l + r;
        Model { data, shape }
    }

    fn slide(&self, size: usize, step: usize) -> Model {
        let n = self.outer();
        let row = self.row();
        let count = (n - size) / step + 1;
        let mut data = Vec::new();
        for i in 0..count {
            data.extend_from_slice(&self.data[i * step * row..(i * step + size) * row]);
        }
        let mut shape = vec![count, size];
        shape.extend_from_slice(&self.shape[1..]);
        Model { data, shape }
    }

    fn split(&self, c: usize) -> Model {
        let mut shape = vec![self.outer() / c, c];
        shape.extend_from_slice(&self.shape[1..]);
        Model {
            data: self.data.clone(),
            shape,
        }
    }

    fn join(&self) -> Model {
        let mut shape = vec![self.shape[0] * self.shape[1]];
        shape.extend_from_slice(&self.shape[2..]);
        Model {
            data: self.data.clone(),
            shape,
        }
    }

    fn transpose(&self) -> Model {
        let (a, b) = (self.shape[0], self.shape[1]);
        let inner: usize = self.shape.iter().skip(2).product::<usize>().max(1);
        let mut data = vec![0.0; self.data.len()];
        for i in 0..a {
            for j in 0..b {
                let src = (i * b + j) * inner;
                let dst = (j * a + i) * inner;
                data[dst..dst + inner].copy_from_slice(&self.data[src..src + inner]);
            }
        }
        let mut shape = vec![b, a];
        shape.extend_from_slice(&self.shape[2..]);
        Model { data, shape }
    }
}

/// One random transformation applied to both the model and the view.
#[derive(Debug, Clone)]
enum Op {
    Pad(usize, usize, Boundary),
    PadValue(usize, usize),
    Slide(usize, usize),
    Split(usize),
    Join,
    Transpose,
}

struct Rng(lift_tuner::SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(lift_tuner::SplitMix64::new(seed))
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(n as usize) as u64
    }
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(6) {
        0 => {
            let b = match rng.below(3) {
                0 => Boundary::Clamp,
                1 => Boundary::Mirror,
                _ => Boundary::Wrap,
            };
            Op::Pad(1 + rng.below(2) as usize, 1 + rng.below(2) as usize, b)
        }
        1 => Op::PadValue(1 + rng.below(2) as usize, 1 + rng.below(2) as usize),
        2 => Op::Slide(2 + rng.below(2) as usize, 1 + rng.below(2) as usize),
        3 => Op::Split(2 + rng.below(2) as usize),
        4 => Op::Join,
        _ => Op::Transpose,
    }
}

/// Evaluates the access expression a view produced against concrete data.
fn eval_cexpr(e: &CExpr, data: &[f32]) -> f64 {
    match e {
        CExpr::Int(v) => *v as f64,
        CExpr::Float(v) => *v as f64,
        CExpr::Bool(v) => *v as i64 as f64,
        CExpr::Load { idx, .. } => {
            let i = eval_cexpr(idx, data) as usize;
            data[i] as f64
        }
        CExpr::Bin(op, a, b) => {
            let (x, y) = (eval_cexpr(a, data), eval_cexpr(b, data));
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => ((x as i64) / (y as i64)) as f64,
                BinOp::Mod => ((x as i64) % (y as i64)) as f64,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::Lt => (x < y) as i64 as f64,
                BinOp::Le => (x <= y) as i64 as f64,
                BinOp::Gt => (x > y) as i64 as f64,
                BinOp::Ge => (x >= y) as i64 as f64,
                BinOp::Eq => (x == y) as i64 as f64,
                BinOp::Ne => (x != y) as i64 as f64,
                BinOp::And => ((x != 0.0) && (y != 0.0)) as i64 as f64,
                BinOp::Or => ((x != 0.0) || (y != 0.0)) as i64 as f64,
            }
        }
        CExpr::Select { cond, then_, else_ } => {
            if eval_cexpr(cond, data) != 0.0 {
                eval_cexpr(then_, data)
            } else {
                eval_cexpr(else_, data)
            }
        }
        other => panic!("unexpected expression in view access: {other:?}"),
    }
}

/// Lazy view reads equal materialised semantics for random layout stacks
/// over random data. Ops that do not fit the current shape are skipped, as
/// `prop_assume!` did before.
#[test]
fn views_match_materialised_semantics() {
    let mut rng = Rng::new(0x5eed);
    let mut checked = 0usize;
    for case in 0..200 {
        let n = 4 + rng.below(8) as usize;
        let n_ops = rng.below(5) as usize;
        let seed = rng.below(1_000);
        let data: Vec<f32> = (0..n)
            .map(|i| ((i as u64 + 1).wrapping_mul(seed + 7) % 101) as f32)
            .collect();
        let mut model = Model {
            data: data.clone(),
            shape: vec![n],
        };
        let mut view = View::Mem {
            buf: VarRef::fresh("A"),
            space: AddressSpace::Global,
            shape: vec![n],
        };

        let mut ops = Vec::new();
        for _ in 0..n_ops {
            let op = random_op(&mut rng);
            match &op {
                Op::Pad(l, r, b) => {
                    view = View::Pad {
                        left: *l,
                        n: model.outer(),
                        boundary: *b,
                        base: Box::new(view),
                    };
                    model = model.pad(*l, *r, *b);
                }
                Op::PadValue(l, r) => {
                    view = View::PadValue {
                        left: *l,
                        n: model.outer(),
                        value: Scalar::F32(55.5),
                        base: Box::new(view),
                    };
                    model = model.pad_value(*l, *r, 55.5);
                }
                Op::Slide(size, step) => {
                    if model.outer() < *size {
                        continue;
                    }
                    view = View::Slide {
                        step: *step,
                        base: Box::new(view),
                    };
                    model = model.slide(*size, *step);
                }
                Op::Split(c) => {
                    if !model.outer().is_multiple_of(*c) {
                        continue;
                    }
                    view = View::Split {
                        chunk: *c,
                        base: Box::new(view),
                    };
                    model = model.split(*c);
                }
                Op::Join => {
                    if model.shape.len() < 2 {
                        continue;
                    }
                    let inner = model.shape[1];
                    view = View::Join {
                        inner,
                        base: Box::new(view),
                    };
                    model = model.join();
                }
                Op::Transpose => {
                    if model.shape.len() < 2 {
                        continue;
                    }
                    view = View::Transpose {
                        base: Box::new(view),
                    };
                    model = model.transpose();
                }
            }
            ops.push(op);
        }

        // Read every element through the view and compare with the model.
        let total: usize = model.shape.iter().product();
        if total > 4096 {
            continue;
        }
        let dims = model.shape.len();
        for flat in 0..total {
            let mut idxs = Vec::with_capacity(dims);
            let mut rest = flat;
            for d in (0..dims).rev() {
                idxs.push(CExpr::Int((rest % model.shape[d]) as i64));
                rest /= model.shape[d];
            }
            idxs.reverse();
            let access = view.read(&idxs).expect("view resolves");
            let got = eval_cexpr(&access, &data) as f32;
            assert_eq!(
                got, model.data[flat],
                "case {case}: element {flat} of shape {:?} after {ops:?}",
                model.shape
            );
        }
        checked += 1;
    }
    assert!(checked >= 150, "too few cases survived: {checked}");
}
