//! The paper's algorithmic rewrite rules (§4).
//!
//! Every rule is a local transformation `Expr → Option<Expr>` that preserves
//! both the type and the denotational semantics of the expression (validated
//! against the reference evaluator in the tests and property tests of this
//! crate).

use lift_arith::ArithExpr;
use lift_core::build::{join, lam, map, split};
use lift_core::expr::{Expr, FunDecl};
use lift_core::ndim::{map2, map_at_depth, slide2};
use lift_core::pattern::{MapKind, Pattern};
use lift_core::typecheck::typecheck;
use lift_core::types::Type;

use crate::stencil::{match_stencil_1d, match_stencil_2d, Stencil1d, Stencil2d};

/// **Map fusion** — `map f ∘ map g ↦ map (f ∘ g)` (Fig. 2 of the paper).
pub fn map_fusion(e: &Expr) -> Option<Expr> {
    let outer = e.as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f,
    } = outer.fun.as_pattern()?
    else {
        return None;
    };
    let inner = outer.args[0].as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f: g,
    } = inner.fun.as_pattern()?
    else {
        return None;
    };
    let input = &inner.args[0];
    let in_ty = typecheck(input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let fused = f.clone().compose(g.clone(), elem_ty.clone());
    Some(map(fused, input.clone()))
}

/// One half of the tiling decomposition (§4.1):
/// `map f ∘ join ↦ join ∘ map (map f)`.
pub fn map_join_interchange(e: &Expr) -> Option<Expr> {
    let outer = e.as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f,
    } = outer.fun.as_pattern()?
    else {
        return None;
    };
    let join_app = outer.args[0].as_apply()?;
    if !matches!(join_app.fun.as_pattern(), Some(Pattern::Join)) {
        return None;
    }
    let input = &join_app.args[0];
    let in_ty = typecheck(input).ok()?;
    let (chunk_ty, _) = in_ty.as_array()?;
    let f = f.clone();
    let mapped = map(
        lam(chunk_ty.clone(), move |chunk| {
            Expr::apply(
                FunDecl::pattern(Pattern::Map {
                    kind: MapKind::Par,
                    f,
                }),
                [chunk],
            )
        }),
        input.clone(),
    );
    Some(join(mapped))
}

/// The other half of the tiling decomposition (§4.1):
/// `slide n s ↦ join ∘ map (slide n s) ∘ slide u v` with `u − v = n − s`.
pub fn slide_decomposition(e: &Expr, tile: &ArithExpr) -> Option<Expr> {
    let app = e.as_apply()?;
    let Pattern::Slide { size, step } = app.fun.as_pattern()? else {
        return None;
    };
    let (size, step) = (size.clone(), step.clone());
    let input = &app.args[0];
    let v = tile.clone() - (size.clone() - step.clone());
    let in_ty = typecheck(input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let tile_ty = Type::array(elem_ty.clone(), tile.clone());
    let per_tile = lam(tile_ty, move |t| lift_core::build::slide(size, step, t));
    Some(join(map(
        per_tile,
        lift_core::build::slide(tile.clone(), v, input.clone()),
    )))
}

/// **Overlapped tiling, 1D** (§4.1):
///
/// ```text
/// map(f, slide(n, s, x)) ↦
///   join(map(tile ⇒ map(f, slide(n, s, tile)), slide(u, v, x)))
/// ```
///
/// with the constraint `n − s = u − v` (the overlap equals the
/// neighbourhood's halo). `tile` is `u`, typically a fresh tunable variable.
/// With `use_local`, the tile is staged through local memory first
/// (composing with the §4.2 rule).
pub fn tile_1d(e: &Expr, tile: &ArithExpr, use_local: bool) -> Option<Expr> {
    let Stencil1d {
        f,
        size,
        step,
        input,
    } = match_stencil_1d(e)?;
    let v = tile.clone() - (size.clone() - step.clone());
    let in_ty = typecheck(&input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let tile_ty = Type::array(elem_ty.clone(), tile.clone());
    let per_tile = lam(tile_ty, move |t| {
        let staged = if use_local {
            Expr::apply(local_copy_1d(), [t])
        } else {
            t
        };
        map(f, lift_core::build::slide(size, step, staged))
    });
    Some(join(map(
        per_tile,
        lift_core::build::slide(tile.clone(), v, input),
    )))
}

/// **Overlapped tiling, 2D** (§4.1):
///
/// ```text
/// map2(f, slide2(n, s, x)) ↦
///   map(join, join(map(transpose,
///     map2(tile ⇒ map2(f, slide2(n, s, tile)), slide2(u, v, x)))))
/// ```
///
/// When `use_local` is set, each tile is first staged into local memory
/// with `toLocal(mapLcl(1)(mapLcl(0)(id)))` — composing the tiling rule
/// with the local-memory rule of §4.2.
pub fn tile_2d(e: &Expr, tile: &ArithExpr, use_local: bool) -> Option<Expr> {
    let Stencil2d {
        f,
        size,
        step,
        input,
    } = match_stencil_2d(e)?;
    let v = tile.clone() - (size.clone() - step.clone());
    let in_ty = typecheck(&input).ok()?;
    let elem_ty = in_ty.as_array()?.0.as_array()?.0.clone();
    let tile_ty = Type::array_2d(elem_ty.clone(), tile.clone(), tile.clone());
    let row_ty = Type::array(elem_ty, tile.clone());

    let per_tile = lam(tile_ty, move |t| {
        let staged = if use_local {
            Expr::apply(local_copy_2d(&row_ty), [t])
        } else {
            t
        };
        map2(f, slide2(size, step, staged))
    });
    let tiles = slide2(tile.clone(), v, input);
    let mapped = map2(per_tile, tiles);
    // Reassembly: map(join) ∘ join ∘ map(transpose).
    let r = map_at_depth(1, FunDecl::pattern(Pattern::Transpose), mapped);
    let r = join(r);
    Some(map_at_depth(1, FunDecl::pattern(Pattern::Join), r))
}

/// The local-memory rule of §4.2, specialised to 2D tiles:
/// `toLocal(mapLcl(1)(λrow. mapLcl(0)(id)(row)))`.
pub fn local_copy_2d(row_ty: &Type) -> FunDecl {
    let copy_row = FunDecl::pattern(Pattern::Map {
        kind: MapKind::Lcl(0),
        f: FunDecl::pattern(Pattern::Id),
    });
    let row_ty = row_ty.clone();
    let copy = FunDecl::pattern(Pattern::Map {
        kind: MapKind::Lcl(1),
        f: lam(row_ty, move |row| Expr::apply(copy_row, [row])),
    });
    FunDecl::pattern(Pattern::ToLocal { f: copy })
}

/// The local-memory rule of §4.2, 1D: `toLocal(mapLcl(0)(id))`.
pub fn local_copy_1d() -> FunDecl {
    FunDecl::pattern(Pattern::ToLocal {
        f: FunDecl::pattern(Pattern::Map {
            kind: MapKind::Lcl(0),
            f: FunDecl::pattern(Pattern::Id),
        }),
    })
}

/// The generic §4.2 rule `map(id) ↦ toLocal(map(id))` as a local rewrite —
/// exposed for rule-level testing; the strategies compose
/// [`local_copy_1d`]/[`local_copy_2d`] directly.
pub fn to_local_rule(e: &Expr) -> Option<Expr> {
    let app = e.as_apply()?;
    let Pattern::Map { kind, f } = app.fun.as_pattern()? else {
        return None;
    };
    if !matches!(f.as_pattern(), Some(Pattern::Id)) {
        return None;
    }
    let inner = FunDecl::pattern(Pattern::Map {
        kind: *kind,
        f: FunDecl::pattern(Pattern::Id),
    });
    Some(Expr::apply(
        FunDecl::pattern(Pattern::ToLocal { f: inner }),
        app.args.clone(),
    ))
}

/// Applies `tile_1d` (then `tile_2d`) at the first matching position
/// anywhere in the expression.
pub fn tile_anywhere(e: &Expr, tile: &ArithExpr, use_local: bool) -> Option<Expr> {
    let t2 = |node: &Expr| tile_2d(node, tile, use_local);
    if let Some(out) = lift_core::visit::rewrite_first(e, &t2) {
        return Some(out);
    }
    let t1 = |node: &Expr| tile_1d(node, tile, use_local);
    lift_core::visit::rewrite_first(e, &t1)
}

/// Splits a 1D map into grid/chunk form (used by coarsening tests):
/// `map f ↦ join ∘ map(map f) ∘ split m`.
pub fn split_join_rule(e: &Expr, m: &ArithExpr) -> Option<Expr> {
    let app = e.as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f,
    } = app.fun.as_pattern()?
    else {
        return None;
    };
    let input = &app.args[0];
    let in_ty = typecheck(input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let chunk_ty = Type::array(elem_ty.clone(), m.clone());
    let f = f.clone();
    let per_chunk = lam(chunk_ty, move |c| {
        Expr::apply(
            FunDecl::pattern(Pattern::Map {
                kind: MapKind::Par,
                f,
            }),
            [c],
        )
    });
    Some(join(map(per_chunk, split(m.clone(), input.clone()))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::eval::{eval_fun, DataValue};
    use lift_core::prelude::*;

    fn sum_nbh(n: i64) -> FunDecl {
        lam(Type::array(Type::f32(), n), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        })
    }

    fn stencil_prog_1d(n: i64, body_of: impl FnOnce(Expr) -> Expr) -> FunDecl {
        lam_named("A", Type::array(Type::f32(), n), body_of)
    }

    fn run(prog: &FunDecl, input: DataValue) -> Vec<f32> {
        eval_fun(prog, &[input]).expect("evaluates").flatten_f32()
    }

    #[test]
    fn tile_1d_preserves_semantics() {
        // N = 18 padded to 20; tile u = 6, v = 4 → 4 tiles of 4
        // neighbourhoods = 16 outputs + 2 extra? No: (20-6+4)/4 = 4 tiles
        // covering (18-3+1)+2 = wait — use the padded length 20:
        // direct: (20-3)/1+1 = 18 neighbourhoods; tiled: 4 tiles × 4 = 16.
        // For exact cover choose N so (L−u)/v is exact AND counts agree:
        // L=19? Use L = 18 → pad to 20, tile 5, v = 3: (20-5)/3+1 = 6 tiles
        // × (5-3+1)=3 nbhs = 18 ✓.
        let prog = stencil_prog_1d(18, |a| {
            map(sum_nbh(3), slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &ArithExpr::from(5), false).expect("tiles");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let input = DataValue::from_f32s((0..18).map(|i| (i as f32) * 0.5 - 3.0));
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }

    #[test]
    fn tile_2d_preserves_semantics() {
        // 14×14 grid, pad → 16×16, nbh 3/1, tile 6, v = 4: (16−6)/4+1 = 3✗
        // (16-6+4)/4 = 3.5 — choose tile 4, v = 2: (16−4)/2+1 = 7 tiles,
        // each (4−3)/1+1 = 2 nbhs → 14 ✓.
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        let prog = lam_named("A", Type::array_2d(Type::f32(), 14, 14), |a| {
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &ArithExpr::from(4), false).expect("tiles");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let data: Vec<f32> = (0..14 * 14).map(|i| ((i * 13) % 37) as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 14, 14);
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }

    #[test]
    fn tiling_constraint_u_minus_v_equals_n_minus_s() {
        // For nbh (3,1) and tile u=5: v must be 3 (checked structurally).
        let prog = stencil_prog_1d(18, |a| {
            map(sum_nbh(3), slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled = tile_anywhere(&l.body, &ArithExpr::from(5), false).expect("tiles");
        let slides: Vec<(i64, i64)> = {
            let mut out = Vec::new();
            lift_core::visit::walk(&tiled, &mut |node| {
                if let Some(Pattern::Slide { size, step }) = node.applied_pattern() {
                    if let (Some(sz), Some(st)) = (size.as_cst(), step.as_cst()) {
                        out.push((sz, st));
                    }
                }
            });
            out
        };
        assert!(slides.contains(&(5, 3)), "tiles slide: {slides:?}");
        assert!(slides.contains(&(3, 1)), "nbh slide: {slides:?}");
    }

    #[test]
    fn map_fusion_preserves_semantics() {
        let double = lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x]));
        let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
        let prog = stencil_prog_1d(8, |a| map(double, map(inc, a)));
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let fused_body = map_fusion(&l.body).expect("fuses");
        // One map remains.
        let maps = lift_core::visit::find_positions(&fused_body, &|n| {
            matches!(n.applied_pattern(), Some(Pattern::Map { .. }))
        });
        assert_eq!(maps.len(), 1);
        let fused = FunDecl::lambda(l.params.clone(), fused_body);
        let input = DataValue::from_f32s([1.0, -2.0, 3.5, 0.0, 9.0, 4.0, -7.0, 2.0]);
        assert_eq!(run(&prog, input.clone()), run(&fused, input));
    }

    #[test]
    fn decomposed_halves_preserve_semantics() {
        // slide(3,1) = join ∘ map(slide(3,1)) ∘ slide(5,3) over length 20.
        let prog = stencil_prog_1d(20, |a| slide(3, 1, a));
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let rhs_body = slide_decomposition(&l.body, &ArithExpr::from(5)).expect("decomposes");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&rhs_body).unwrap());
        let rhs = FunDecl::lambda(l.params.clone(), rhs_body);
        let input = DataValue::from_f32s((0..20).map(|i| i as f32));
        assert_eq!(run(&prog, input.clone()), run(&rhs, input));
    }

    #[test]
    fn map_join_interchange_preserves_semantics() {
        let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
        let prog = lam_named("A", Type::array_2d(Type::f32(), 4, 3), |a| {
            map(inc, join(a))
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let rhs_body = map_join_interchange(&l.body).expect("interchanges");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&rhs_body).unwrap());
        let rhs = FunDecl::lambda(l.params.clone(), rhs_body);
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 4, 3);
        assert_eq!(run(&prog, input.clone()), run(&rhs, input));
    }

    #[test]
    fn split_join_rule_preserves_semantics() {
        let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
        let prog = stencil_prog_1d(12, |a| map(inc, a));
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let rhs_body = split_join_rule(&l.body, &ArithExpr::from(4)).expect("splits");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&rhs_body).unwrap());
        let rhs = FunDecl::lambda(l.params.clone(), rhs_body);
        let input = DataValue::from_f32s((0..12).map(|i| i as f32 * 2.0));
        assert_eq!(run(&prog, input.clone()), run(&rhs, input));
    }

    #[test]
    fn to_local_rule_wraps_copy() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 8)));
        let e = map(id(), a);
        let wrapped = to_local_rule(&e).expect("wraps");
        assert!(matches!(
            wrapped.as_apply().unwrap().fun.as_pattern(),
            Some(Pattern::ToLocal { .. })
        ));
    }

    #[test]
    fn tile_2d_with_local_memory_stages_tiles() {
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        let prog = lam_named("A", Type::array_2d(Type::f32(), 14, 14), |a| {
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &ArithExpr::from(4), true).expect("tiles");
        let locals = lift_core::visit::find_positions(&tiled_body, &|n| {
            matches!(
                n.as_apply().and_then(|a| a.fun.as_pattern()),
                Some(Pattern::ToLocal { .. })
            )
        });
        assert_eq!(locals.len(), 1);
        // Semantics unchanged (evaluator ignores memory placement).
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let data: Vec<f32> = (0..14 * 14).map(|i| (i % 11) as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 14, 14);
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }
}
