//! The paper's algorithmic rewrite rules (§4).
//!
//! Every rule is a local transformation `Expr → Option<Expr>` that preserves
//! both the type and the denotational semantics of the expression (validated
//! against the reference evaluator in the tests and property tests of this
//! crate).

use lift_arith::ArithExpr;
use lift_core::build::{get, join, lam, map, split};
use lift_core::expr::{Expr, FunDecl};
use lift_core::ndim::{adjacent_sort_depths, map_at_depth, map_nd, slide_nd, zip_nd};
use lift_core::pattern::{MapKind, Pattern};
use lift_core::typecheck::typecheck;
use lift_core::types::Type;

use crate::stencil::{match_stencil_nd, Operand, StencilNd};

/// **Map fusion** — `map f ∘ map g ↦ map (f ∘ g)` (Fig. 2 of the paper).
pub fn map_fusion(e: &Expr) -> Option<Expr> {
    let outer = e.as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f,
    } = outer.fun.as_pattern()?
    else {
        return None;
    };
    let inner = outer.args[0].as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f: g,
    } = inner.fun.as_pattern()?
    else {
        return None;
    };
    let input = &inner.args[0];
    let in_ty = typecheck(input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let fused = f.clone().compose(g.clone(), elem_ty.clone());
    Some(map(fused, input.clone()))
}

/// One half of the tiling decomposition (§4.1):
/// `map f ∘ join ↦ join ∘ map (map f)`.
pub fn map_join_interchange(e: &Expr) -> Option<Expr> {
    let outer = e.as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f,
    } = outer.fun.as_pattern()?
    else {
        return None;
    };
    let join_app = outer.args[0].as_apply()?;
    if !matches!(join_app.fun.as_pattern(), Some(Pattern::Join)) {
        return None;
    }
    let input = &join_app.args[0];
    let in_ty = typecheck(input).ok()?;
    let (chunk_ty, _) = in_ty.as_array()?;
    let f = f.clone();
    let mapped = map(
        lam(chunk_ty.clone(), move |chunk| {
            Expr::apply(
                FunDecl::pattern(Pattern::Map {
                    kind: MapKind::Par,
                    f,
                }),
                [chunk],
            )
        }),
        input.clone(),
    );
    Some(join(mapped))
}

/// The other half of the tiling decomposition (§4.1):
/// `slide n s ↦ join ∘ map (slide n s) ∘ slide u v` with `u − v = n − s`.
pub fn slide_decomposition(e: &Expr, tile: &ArithExpr) -> Option<Expr> {
    let app = e.as_apply()?;
    let Pattern::Slide { size, step } = app.fun.as_pattern()? else {
        return None;
    };
    let (size, step) = (size.clone(), step.clone());
    let input = &app.args[0];
    let v = tile.clone() - (size.clone() - step.clone());
    let in_ty = typecheck(input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let tile_ty = Type::array(elem_ty.clone(), tile.clone());
    let per_tile = lam(tile_ty, move |t| lift_core::build::slide(size, step, t));
    Some(join(map(
        per_tile,
        lift_core::build::slide(tile.clone(), v, input.clone()),
    )))
}

/// Builds the nested array type `[[…[elem]_{dims[r−1]}…]_{dims[1]}]_{dims[0]}`.
fn nest_array(elem: Type, dims: &[ArithExpr]) -> Type {
    dims.iter()
        .rev()
        .fold(elem, |acc, d| Type::array(acc, d.clone()))
}

/// The element type below `rank` array dimensions of `ty`.
fn elem_below(ty: &Type, rank: usize) -> Option<Type> {
    let mut cur = ty.clone();
    for _ in 0..rank {
        cur = cur.as_array()?.0.clone();
    }
    Some(cur)
}

/// Reassembles a grid of output tiles back into a flat grid: interleaves
/// the `rank` tile-grid dimensions with the `rank` in-tile dimensions by
/// adjacent transposes, then joins each pair
/// (`map(join) ∘ join ∘ map(transpose)` in 2D, §4.1).
fn reassemble_tiles(rank: usize, e: Expr) -> Expr {
    // Current order [t0 … t_{r−1} a0 … a_{r−1}], target [t0 a0 t1 a1 …]:
    // label every dimension with its target position and sort.
    let mut order: Vec<usize> = (0..rank)
        .map(|k| 2 * k)
        .chain((0..rank).map(|k| 2 * k + 1))
        .collect();
    let mut out = e;
    for d in adjacent_sort_depths(&mut order) {
        out = map_at_depth(d, FunDecl::pattern(Pattern::Transpose), out);
    }
    for d in 0..rank {
        out = map_at_depth(d, FunDecl::pattern(Pattern::Join), out);
    }
    out
}

/// **Overlapped tiling, rank-generic** (§4.1) — subsumes the paper's 1D and
/// 2D rules and extends them to 3D:
///
/// ```text
/// map_nd(f, slide_nd(n, s, x)) ↦
///   reassemble(map_nd(tile ⇒ map_nd(f, slide_nd(n, s, tile)),
///              slide_nd(u, v, x)))
/// ```
///
/// with one tile size `u_d` per dimension and the per-dimension constraint
/// `n_d − s_d = u_d − v_d` (the overlap equals the neighbourhood's halo).
/// `tiles` supplies `u_0 … u_{rank−1}` outermost first, typically fresh
/// tunable variables; the rule fails unless `tiles.len()` equals the
/// matched rank.
///
/// Multi-grid stencils (`map_nd(f, zip_nd(…))`, as Hotspot/SRAD/the §3.5
/// acoustic simulation build) tile uniformly: every windowed operand is
/// decomposed into overlapping `u`-tiles and every element-wise operand
/// into disjoint `v`-blocks (`slide_nd(v, v, ·)` — i.e. `split`), so the
/// zip re-forms per tile.
///
/// With `use_local`, each windowed tile is staged through local memory
/// first (composing with the §4.2 rule).
pub fn tile_nd(e: &Expr, tiles: &[ArithExpr], use_local: bool) -> Option<Expr> {
    let StencilNd {
        rank,
        f,
        sizes,
        steps,
        operands,
    } = match_stencil_nd(e)?;
    if tiles.len() != rank {
        return None;
    }
    // The deep-zip builders cover arities 2–3; wider zips stay untiled.
    if operands.len() > 3 {
        return None;
    }
    // Decomposing an element-wise operand into disjoint v-blocks only
    // yields one block per output tile when every step is 1 (v outputs per
    // tile ⇔ v elements per block); other steps would produce an
    // unequal-length zip, so refuse rather than emit an ill-typed rewrite.
    if operands.iter().any(|o| !o.is_windowed()) && !steps.iter().all(|s| s.is_cst(1)) {
        return None;
    }
    // v_d = u_d − (n_d − s_d).
    let vs: Vec<ArithExpr> = tiles
        .iter()
        .zip(sizes.iter().zip(&steps))
        .map(|(u, (n, s))| u.clone() - (n.clone() - s.clone()))
        .collect();

    // Per-operand tile grids and in-tile types.
    let mut grids = Vec::with_capacity(operands.len());
    let mut tile_tys = Vec::with_capacity(operands.len());
    let mut windowed = Vec::with_capacity(operands.len());
    for op in &operands {
        let in_ty = typecheck(op.expr()).ok()?;
        let elem = elem_below(&in_ty, rank)?;
        match op {
            Operand::Windowed(input) => {
                grids.push(slide_nd(tiles, &vs, input.clone()));
                tile_tys.push(nest_array(elem, tiles));
                windowed.push(true);
            }
            Operand::Elementwise(g) => {
                grids.push(slide_nd(&vs, &vs, g.clone()));
                tile_tys.push(nest_array(elem, &vs));
                windowed.push(false);
            }
        }
    }

    let stage = {
        let tile_tys = tile_tys.clone();
        move |i: usize, t: Expr| -> Expr {
            if use_local {
                Expr::apply(local_copy_nd(&tile_tys[i], rank), [t])
            } else {
                t
            }
        }
    };
    let per_tile: FunDecl = if operands.len() == 1 {
        let (sizes, steps) = (sizes.clone(), steps.clone());
        lam(tile_tys[0].clone(), move |t| {
            map_nd(rank, f, slide_nd(&sizes, &steps, stage(0, t)))
        })
    } else {
        let (sizes, steps) = (sizes.clone(), steps.clone());
        let flags = windowed.clone();
        lam(Type::Tuple(tile_tys.clone()), move |t| {
            let comps: Vec<Expr> = flags
                .iter()
                .enumerate()
                .map(|(i, is_win)| {
                    let c = get(i, t.clone());
                    if *is_win {
                        slide_nd(&sizes, &steps, stage(i, c))
                    } else {
                        c
                    }
                })
                .collect();
            map_nd(rank, f, zip_nd(rank, comps))
        })
    };
    let grid = if grids.len() == 1 {
        grids.pop().expect("one grid")
    } else {
        zip_nd(rank, grids)
    };
    Some(reassemble_tiles(rank, map_nd(rank, per_tile, grid)))
}

/// The local-memory rule of §4.2 for a rank-1–3 tile: nested
/// `toLocal(mapLcl(rank−1)(… mapLcl(0)(id) …))` copies, one `mapLcl` level
/// per tile dimension (`toLocal(mapLcl(1)(mapLcl(0)(id)))` in 2D). Only
/// the outermost `rank` array levels are parallelised — a tile of
/// array-valued *elements* copies each element with the innermost
/// `mapLcl(0)(id)`, not with extra local thread dimensions.
pub fn local_copy_nd(tile_ty: &Type, rank: usize) -> FunDecl {
    // Element types below each of the `rank` tile levels, innermost last.
    let mut elem_tys = Vec::new();
    let mut cur = tile_ty.clone();
    for _ in 0..rank {
        let el = cur
            .as_array()
            .expect("local_copy_nd: tile type shallower than its rank")
            .0
            .clone();
        elem_tys.push(el.clone());
        cur = el;
    }
    assert!(rank >= 1, "local_copy_nd needs an array type");
    let mut copy = FunDecl::pattern(Pattern::Map {
        kind: MapKind::Lcl(0),
        f: FunDecl::pattern(Pattern::Id),
    });
    for d in 1..rank {
        // The element type at this map level ([..]_{dims[rank−d..]}).
        let sub_ty = elem_tys[rank - 1 - d].clone();
        let inner = copy;
        copy = FunDecl::pattern(Pattern::Map {
            kind: MapKind::Lcl(d as u8),
            f: lam(sub_ty, move |sub| Expr::apply(inner, [sub])),
        });
    }
    FunDecl::pattern(Pattern::ToLocal { f: copy })
}

/// The generic §4.2 rule `map(id) ↦ toLocal(map(id))` as a local rewrite —
/// exposed for rule-level testing; the strategies compose
/// [`local_copy_nd`] directly.
pub fn to_local_rule(e: &Expr) -> Option<Expr> {
    let app = e.as_apply()?;
    let Pattern::Map { kind, f } = app.fun.as_pattern()? else {
        return None;
    };
    if !matches!(f.as_pattern(), Some(Pattern::Id)) {
        return None;
    }
    let inner = FunDecl::pattern(Pattern::Map {
        kind: *kind,
        f: FunDecl::pattern(Pattern::Id),
    });
    Some(Expr::apply(
        FunDecl::pattern(Pattern::ToLocal { f: inner }),
        app.args.clone(),
    ))
}

/// Applies [`tile_nd`] at the first matching position anywhere in the
/// expression. `tiles` carries one tile-size expression per dimension of
/// the stencil being tiled (outermost first), so only a stencil of exactly
/// that rank is rewritten.
pub fn tile_anywhere(e: &Expr, tiles: &[ArithExpr], use_local: bool) -> Option<Expr> {
    let t = |node: &Expr| tile_nd(node, tiles, use_local);
    lift_core::visit::rewrite_first(e, &t)
}

/// Splits a 1D map into grid/chunk form (used by coarsening tests):
/// `map f ↦ join ∘ map(map f) ∘ split m`.
pub fn split_join_rule(e: &Expr, m: &ArithExpr) -> Option<Expr> {
    let app = e.as_apply()?;
    let Pattern::Map {
        kind: MapKind::Par,
        f,
    } = app.fun.as_pattern()?
    else {
        return None;
    };
    let input = &app.args[0];
    let in_ty = typecheck(input).ok()?;
    let (elem_ty, _) = in_ty.as_array()?;
    let chunk_ty = Type::array(elem_ty.clone(), m.clone());
    let f = f.clone();
    let per_chunk = lam(chunk_ty, move |c| {
        Expr::apply(
            FunDecl::pattern(Pattern::Map {
                kind: MapKind::Par,
                f,
            }),
            [c],
        )
    });
    Some(join(map(per_chunk, split(m.clone(), input.clone()))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::eval::{eval_fun, DataValue};
    use lift_core::prelude::*;

    fn sum_nbh(n: i64) -> FunDecl {
        lam(Type::array(Type::f32(), n), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        })
    }

    fn stencil_prog_1d(n: i64, body_of: impl FnOnce(Expr) -> Expr) -> FunDecl {
        lam_named("A", Type::array(Type::f32(), n), body_of)
    }

    fn run(prog: &FunDecl, input: DataValue) -> Vec<f32> {
        eval_fun(prog, &[input]).expect("evaluates").flatten_f32()
    }

    fn tiles_of(us: &[i64]) -> Vec<ArithExpr> {
        us.iter().map(|u| ArithExpr::from(*u)).collect()
    }

    #[test]
    fn tile_1d_preserves_semantics() {
        // N = 18 padded to 20; tile u = 6, v = 4 → 4 tiles of 4
        // neighbourhoods = 16 outputs + 2 extra? No: (20-6+4)/4 = 4 tiles
        // covering (18-3+1)+2 = wait — use the padded length 20:
        // direct: (20-3)/1+1 = 18 neighbourhoods; tiled: 4 tiles × 4 = 16.
        // For exact cover choose N so (L−u)/v is exact AND counts agree:
        // L=19? Use L = 18 → pad to 20, tile 5, v = 3: (20-5)/3+1 = 6 tiles
        // × (5-3+1)=3 nbhs = 18 ✓.
        let prog = stencil_prog_1d(18, |a| {
            map(sum_nbh(3), slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &tiles_of(&[5]), false).expect("tiles");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let input = DataValue::from_f32s((0..18).map(|i| (i as f32) * 0.5 - 3.0));
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }

    #[test]
    fn tile_2d_preserves_semantics() {
        // 14×14 grid, pad → 16×16, nbh 3/1, tile 6, v = 4: (16−6)/4+1 = 3✗
        // (16-6+4)/4 = 3.5 — choose tile 4, v = 2: (16−4)/2+1 = 7 tiles,
        // each (4−3)/1+1 = 2 nbhs → 14 ✓.
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        let prog = lam_named("A", Type::array_2d(Type::f32(), 14, 14), |a| {
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &tiles_of(&[4, 4]), false).expect("tiles");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let data: Vec<f32> = (0..14 * 14).map(|i| ((i * 13) % 37) as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 14, 14);
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }

    #[test]
    fn tile_3d_preserves_semantics() {
        // 6³ grid, pad → 8³, nbh 3/1; tile 4, v = 2: (8−4)/2+1 = 3 tiles
        // per dimension, each (4−3)/1+1 = 2 outputs → 6 per dimension ✓.
        let f = lam(Type::array_3d(Type::f32(), 3, 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(join(nbh)))
        });
        let prog = lam_named("A", Type::array_3d(Type::f32(), 6, 6, 6), |a| {
            lift_core::ndim::map3(
                f,
                lift_core::ndim::slide3(3, 1, lift_core::ndim::pad3(1, 1, Boundary::Clamp, a)),
            )
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        for use_local in [false, true] {
            let tiled_body =
                tile_anywhere(&l.body, &tiles_of(&[4, 4, 4]), use_local).expect("tiles");
            assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
            let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
            let data: Vec<f32> = (0..216).map(|i| ((i * 7) % 23) as f32 - 11.0).collect();
            let input = DataValue::from_f32s_3d(&data, 6, 6, 6);
            assert_eq!(run(&prog, input.clone()), run(&tiled, input));
        }
    }

    #[test]
    fn tile_3d_per_dimension_tile_sizes() {
        // Independent tile sizes per dimension on a non-cubic 4×6×10 grid
        // (padded 6×8×12): u = (6, 4, 7) with v = (4, 2, 5) —
        // (6−6)/4+1 = 1, (8−4)/2+1 = 3, (12−7)/5+1 = 2 tiles.
        let f = lam(Type::array_3d(Type::f32(), 3, 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(join(nbh)))
        });
        let prog = lam_named("A", Type::array_3d(Type::f32(), 4, 6, 10), |a| {
            lift_core::ndim::map3(
                f,
                lift_core::ndim::slide3(3, 1, lift_core::ndim::pad3(1, 1, Boundary::Clamp, a)),
            )
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &tiles_of(&[6, 4, 7]), false).expect("tiles");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let data: Vec<f32> = (0..240).map(|i| ((i * 5) % 19) as f32).collect();
        let input = DataValue::from_f32s_3d(&data, 4, 6, 10);
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }

    #[test]
    fn tile_zipped_multi_grid_stencil() {
        // Hotspot-style: an element-wise grid zipped with neighbourhoods.
        // The element-wise operand decomposes into disjoint v-blocks.
        let tup = Type::Tuple(vec![Type::f32(), Type::array_3d(Type::f32(), 3, 3, 3)]);
        let f = lam(tup, |t| {
            let p = get(0, t.clone());
            let s = reduce(add_f32(), Expr::f32(0.0), join(join(get(1, t))));
            call(&add_f32(), [p, s])
        });
        let prog = lam2_named(
            "P",
            Type::array_3d(Type::f32(), 6, 6, 6),
            "T",
            Type::array_3d(Type::f32(), 6, 6, 6),
            |p, t| {
                let nbhs =
                    lift_core::ndim::slide3(3, 1, lift_core::ndim::pad3(1, 1, Boundary::Clamp, t));
                lift_core::ndim::map3(f, lift_core::ndim::zip2_3d(p, nbhs))
            },
        );
        let FunDecl::Lambda(l) = &prog else { panic!() };
        for use_local in [false, true] {
            let tiled_body =
                tile_anywhere(&l.body, &tiles_of(&[4, 4, 4]), use_local).expect("tiles");
            assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled_body).unwrap());
            let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
            let pdata: Vec<f32> = (0..216).map(|i| (i % 13) as f32).collect();
            let tdata: Vec<f32> = (0..216).map(|i| ((i * 3) % 17) as f32).collect();
            let p = DataValue::from_f32s_3d(&pdata, 6, 6, 6);
            let t = DataValue::from_f32s_3d(&tdata, 6, 6, 6);
            let lhs = eval_fun(&prog, &[p.clone(), t.clone()])
                .expect("evaluates")
                .flatten_f32();
            let rhs = eval_fun(&tiled, &[p, t]).expect("evaluates").flatten_f32();
            assert_eq!(lhs, rhs, "use_local={use_local}");
        }
    }

    #[test]
    fn zipped_stencil_with_step_above_one_is_not_tiled() {
        // The disjoint v-block decomposition of element-wise operands is
        // only sound for step 1; the rule must refuse, not mis-rewrite.
        let tup = Type::Tuple(vec![Type::f32(), Type::array(Type::f32(), 3)]);
        let f = lam(tup, |t| {
            let g = get(0, t.clone());
            let s = reduce(add_f32(), Expr::f32(0.0), get(1, t));
            call(&add_f32(), [g, s])
        });
        let prog = lam2_named(
            "G",
            Type::array(Type::f32(), 5),
            "A",
            Type::array(Type::f32(), 11),
            |g, a| map(f, zip2(g, slide(3, 2, a))),
        );
        let FunDecl::Lambda(l) = &prog else { panic!() };
        assert!(typecheck(&l.body).is_ok());
        assert!(tile_anywhere(&l.body, &tiles_of(&[5]), false).is_none());
    }

    #[test]
    fn tiling_constraint_u_minus_v_equals_n_minus_s() {
        // For nbh (3,1) and tile u=5: v must be 3 (checked structurally).
        let prog = stencil_prog_1d(18, |a| {
            map(sum_nbh(3), slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled = tile_anywhere(&l.body, &tiles_of(&[5]), false).expect("tiles");
        let slides: Vec<(i64, i64)> = {
            let mut out = Vec::new();
            lift_core::visit::walk(&tiled, &mut |node| {
                if let Some(Pattern::Slide { size, step }) = node.applied_pattern() {
                    if let (Some(sz), Some(st)) = (size.as_cst(), step.as_cst()) {
                        out.push((sz, st));
                    }
                }
            });
            out
        };
        assert!(slides.contains(&(5, 3)), "tiles slide: {slides:?}");
        assert!(slides.contains(&(3, 1)), "nbh slide: {slides:?}");
    }

    #[test]
    fn map_fusion_preserves_semantics() {
        let double = lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x]));
        let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
        let prog = stencil_prog_1d(8, |a| map(double, map(inc, a)));
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let fused_body = map_fusion(&l.body).expect("fuses");
        // One map remains.
        let maps = lift_core::visit::find_positions(&fused_body, &|n| {
            matches!(n.applied_pattern(), Some(Pattern::Map { .. }))
        });
        assert_eq!(maps.len(), 1);
        let fused = FunDecl::lambda(l.params.clone(), fused_body);
        let input = DataValue::from_f32s([1.0, -2.0, 3.5, 0.0, 9.0, 4.0, -7.0, 2.0]);
        assert_eq!(run(&prog, input.clone()), run(&fused, input));
    }

    #[test]
    fn decomposed_halves_preserve_semantics() {
        // slide(3,1) = join ∘ map(slide(3,1)) ∘ slide(5,3) over length 20.
        let prog = stencil_prog_1d(20, |a| slide(3, 1, a));
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let rhs_body = slide_decomposition(&l.body, &ArithExpr::from(5)).expect("decomposes");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&rhs_body).unwrap());
        let rhs = FunDecl::lambda(l.params.clone(), rhs_body);
        let input = DataValue::from_f32s((0..20).map(|i| i as f32));
        assert_eq!(run(&prog, input.clone()), run(&rhs, input));
    }

    #[test]
    fn map_join_interchange_preserves_semantics() {
        let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
        let prog = lam_named("A", Type::array_2d(Type::f32(), 4, 3), |a| {
            map(inc, join(a))
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let rhs_body = map_join_interchange(&l.body).expect("interchanges");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&rhs_body).unwrap());
        let rhs = FunDecl::lambda(l.params.clone(), rhs_body);
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 4, 3);
        assert_eq!(run(&prog, input.clone()), run(&rhs, input));
    }

    #[test]
    fn split_join_rule_preserves_semantics() {
        let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
        let prog = stencil_prog_1d(12, |a| map(inc, a));
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let rhs_body = split_join_rule(&l.body, &ArithExpr::from(4)).expect("splits");
        assert_eq!(typecheck(&l.body).unwrap(), typecheck(&rhs_body).unwrap());
        let rhs = FunDecl::lambda(l.params.clone(), rhs_body);
        let input = DataValue::from_f32s((0..12).map(|i| i as f32 * 2.0));
        assert_eq!(run(&prog, input.clone()), run(&rhs, input));
    }

    #[test]
    fn to_local_rule_wraps_copy() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 8)));
        let e = map(id(), a);
        let wrapped = to_local_rule(&e).expect("wraps");
        assert!(matches!(
            wrapped.as_apply().unwrap().fun.as_pattern(),
            Some(Pattern::ToLocal { .. })
        ));
    }

    #[test]
    fn tile_2d_with_local_memory_stages_tiles() {
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        let prog = lam_named("A", Type::array_2d(Type::f32(), 14, 14), |a| {
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        });
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let tiled_body = tile_anywhere(&l.body, &tiles_of(&[4, 4]), true).expect("tiles");
        let locals = lift_core::visit::find_positions(&tiled_body, &|n| {
            matches!(
                n.as_apply().and_then(|a| a.fun.as_pattern()),
                Some(Pattern::ToLocal { .. })
            )
        });
        assert_eq!(locals.len(), 1);
        // Semantics unchanged (evaluator ignores memory placement).
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);
        let data: Vec<f32> = (0..14 * 14).map(|i| (i % 11) as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 14, 14);
        assert_eq!(run(&prog, input.clone()), run(&tiled, input));
    }
}
