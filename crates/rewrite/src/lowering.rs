//! Lowering rules: mapping high-level parallelism onto the OpenCL thread
//! hierarchy, sequentialisation, unrolling, and thread coarsening.

use lift_arith::ArithExpr;
use lift_core::expr::{Expr, FunDecl};
use lift_core::pattern::{MapKind, Pattern, ReduceKind};
use lift_core::typecheck::typecheck;
use lift_core::types::Type;
use lift_core::visit::rewrite_everywhere;

/// Is `f` a pure layout function (compiles to views, no loops)?
///
/// Mirrors the code generator's classification: compositions of `slide`,
/// `pad`, `split`, `join`, `transpose`, `zip`, `get`, `id`, and layout-only
/// `map`s.
pub fn is_layout_fun(f: &FunDecl) -> bool {
    match f {
        FunDecl::UserFun(_) => false,
        FunDecl::Pattern(p) => match p.as_ref() {
            Pattern::Id
            | Pattern::Transpose
            | Pattern::Slide { .. }
            | Pattern::Pad { .. }
            | Pattern::PadValue { .. }
            | Pattern::Split { .. }
            | Pattern::Join
            | Pattern::Get { .. } => true,
            Pattern::Map { f, .. } => is_layout_fun(f),
            _ => false,
        },
        FunDecl::Lambda(l) => l.params.len() == 1 && is_layout_expr(&l.body, l.params[0].id()),
    }
}

fn is_layout_expr(e: &Expr, param_id: u32) -> bool {
    match e {
        Expr::Param(p) => p.id() == param_id,
        Expr::Literal(_) => false,
        Expr::Apply(app) => {
            if matches!(app.fun.as_pattern(), Some(Pattern::Zip { .. })) {
                return app.args.iter().all(|a| is_layout_expr(a, param_id));
            }
            app.args.len() == 1 && is_layout_fun(&app.fun) && is_layout_expr(&app.args[0], param_id)
        }
    }
}

/// Lowers the *grid nest* — the chain of computing `map`s from the root —
/// to the given kinds, outermost first.
///
/// Layout maps and other layout primitives on the spine are passed through
/// untouched; the n-th computing `map` encountered while descending through
/// nested lambda bodies receives `kinds[n]`. Maps beyond `kinds.len()` are
/// left as they are (lower the remainder with [`sequentialise`]).
pub fn lower_grid(e: &Expr, kinds: &[MapKind]) -> Expr {
    if kinds.is_empty() {
        return e.clone();
    }
    match e {
        Expr::Apply(app) => {
            if let Some(Pattern::Map {
                kind: MapKind::Par,
                f,
            }) = app.fun.as_pattern()
            {
                if is_layout_fun(f) {
                    // Pass through layout maps.
                    let args = app
                        .args
                        .iter()
                        .map(|a| lower_grid(a, kinds))
                        .collect::<Vec<_>>();
                    return Expr::apply(app.fun.clone(), args);
                }
                let new_f = if kinds.len() > 1 {
                    lower_grid_fun(f, &kinds[1..])
                } else {
                    f.clone()
                };
                return Expr::apply(
                    FunDecl::pattern(Pattern::Map {
                        kind: kinds[0],
                        f: new_f,
                    }),
                    app.args.clone(),
                );
            }
            // Other spine nodes (join, toLocal, …): descend into arguments.
            let args = app
                .args
                .iter()
                .map(|a| lower_grid(a, kinds))
                .collect::<Vec<_>>();
            Expr::apply(app.fun.clone(), args)
        }
        _ => e.clone(),
    }
}

fn lower_grid_fun(f: &FunDecl, kinds: &[MapKind]) -> FunDecl {
    match f {
        FunDecl::Lambda(l) => FunDecl::lambda(l.params.clone(), lower_grid(&l.body, kinds)),
        FunDecl::Pattern(p) => {
            if let Pattern::Map {
                kind: MapKind::Par,
                f: g,
            } = p.as_ref()
            {
                if !is_layout_fun(g) {
                    let inner = if kinds.len() > 1 {
                        lower_grid_fun(g, &kinds[1..])
                    } else {
                        g.clone()
                    };
                    return FunDecl::pattern(Pattern::Map {
                        kind: kinds[0],
                        f: inner,
                    });
                }
            }
            f.clone()
        }
        FunDecl::UserFun(_) => f.clone(),
    }
}

/// Rewrites every remaining high-level computing `map` to `mapSeq` and
/// every high-level `reduce` to `reduceSeq`.
///
/// Layout maps stay `Par` so the code generator keeps them as views.
pub fn sequentialise(e: &Expr) -> Expr {
    rewrite_everywhere(e, &|node| {
        let app = node.as_apply()?;
        match app.fun.as_pattern()? {
            Pattern::Map {
                kind: MapKind::Par,
                f,
            } if !is_layout_fun(f) => Some(Expr::apply(
                FunDecl::pattern(Pattern::Map {
                    kind: MapKind::Seq,
                    f: f.clone(),
                }),
                app.args.clone(),
            )),
            Pattern::Reduce {
                kind: ReduceKind::Par,
                f,
            } => Some(Expr::apply(
                FunDecl::pattern(Pattern::Reduce {
                    kind: ReduceKind::Seq,
                    f: f.clone(),
                }),
                app.args.clone(),
            )),
            _ => None,
        }
    })
}

/// Unrolls sequential reduces and maps whose trip count is a compile-time
/// constant of at most `limit` (§4.3: *"Unrolling is only legal if the size
/// of the input array has a length which is known at compile time"*).
pub fn unroll(e: &Expr, limit: i64) -> Expr {
    rewrite_everywhere(e, &|node| {
        let app = node.as_apply()?;
        match app.fun.as_pattern()? {
            Pattern::Reduce {
                kind: ReduceKind::Seq,
                f,
            } => {
                let n = const_len(&app.args[1])?;
                (n <= limit).then(|| {
                    Expr::apply(
                        FunDecl::pattern(Pattern::Reduce {
                            kind: ReduceKind::SeqUnroll,
                            f: f.clone(),
                        }),
                        app.args.clone(),
                    )
                })
            }
            Pattern::Map {
                kind: MapKind::Seq,
                f,
            } => {
                let n = const_len(&app.args[0])?;
                (n <= limit).then(|| {
                    Expr::apply(
                        FunDecl::pattern(Pattern::Map {
                            kind: MapKind::SeqUnroll,
                            f: f.clone(),
                        }),
                        app.args.clone(),
                    )
                })
            }
            _ => None,
        }
    })
}

fn const_len(e: &Expr) -> Option<i64> {
    let ty = typecheck(e).ok()?;
    let (_, n) = ty.as_array()?;
    n.as_cst()
}

/// Thread coarsening: rewrites the *innermost* computing grid `map` into
/// `join ∘ map(map f) ∘ split(factor)`, so one thread computes `factor`
/// consecutive elements sequentially (the "how much work a thread performs"
/// knob of §6).
///
/// Returns `None` when no computing map nest exists.
pub fn coarsen_innermost(e: &Expr, factor: &ArithExpr) -> Option<Expr> {
    match e {
        Expr::Apply(app) => {
            if let Some(Pattern::Map {
                kind: MapKind::Par,
                f,
            }) = app.fun.as_pattern()
            {
                if !is_layout_fun(f) {
                    // Try deeper first: the innermost nest wins.
                    if let FunDecl::Lambda(l) = f {
                        if let Some(new_body) = coarsen_innermost(&l.body, factor) {
                            return Some(Expr::apply(
                                FunDecl::pattern(Pattern::Map {
                                    kind: MapKind::Par,
                                    f: FunDecl::lambda(l.params.clone(), new_body),
                                }),
                                app.args.clone(),
                            ));
                        }
                    }
                    // This is the innermost computing map: coarsen here.
                    let arg = &app.args[0];
                    let arg_ty = typecheck(arg).ok()?;
                    let (elem_ty, _) = arg_ty.as_array()?;
                    let chunk_ty = Type::array(elem_ty.clone(), factor.clone());
                    let f = f.clone();
                    let per_chunk = lift_core::build::lam(chunk_ty, move |chunk| {
                        Expr::apply(
                            FunDecl::pattern(Pattern::Map {
                                kind: MapKind::Par,
                                f,
                            }),
                            [chunk],
                        )
                    });
                    return Some(lift_core::build::join(lift_core::build::map(
                        per_chunk,
                        lift_core::build::split(factor.clone(), arg.clone()),
                    )));
                }
            }
            // Descend through spine nodes.
            for (i, a) in app.args.iter().enumerate() {
                if let Some(new_a) = coarsen_innermost(a, factor) {
                    let mut args = app.args.clone();
                    args[i] = new_a;
                    return Some(Expr::apply(app.fun.clone(), args));
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::prelude::*;

    fn stencil_1d(n: i64) -> (FunDecl, Expr) {
        let a = Param::fresh("A", Type::array(Type::f32(), n));
        let sum = lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        });
        let body = map(
            sum.clone(),
            slide(3, 1, pad(1, 1, Boundary::Clamp, Expr::Param(a.clone()))),
        );
        (FunDecl::lambda(vec![a], body.clone()), body)
    }

    fn count_kind(e: &Expr, want: MapKind) -> usize {
        lift_core::visit::find_positions(e, &|node| {
            matches!(
                node.applied_pattern(),
                Some(Pattern::Map { kind, .. }) if *kind == want
            )
        })
        .len()
    }

    #[test]
    fn lower_grid_assigns_kinds() {
        let (_, body) = stencil_1d(32);
        let lowered = lower_grid(&body, &[MapKind::Glb(0)]);
        assert_eq!(count_kind(&lowered, MapKind::Glb(0)), 1);
        assert_eq!(count_kind(&lowered, MapKind::Par), 0);
    }

    #[test]
    fn lower_grid_2d_assigns_nested_kinds() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 16, 16)));
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        let body = lift_core::ndim::map2(
            f,
            lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
        );
        let lowered = lower_grid(&body, &[MapKind::Glb(1), MapKind::Glb(0)]);
        assert_eq!(count_kind(&lowered, MapKind::Glb(1)), 1);
        assert_eq!(count_kind(&lowered, MapKind::Glb(0)), 1);
        // The layout maps inside slide2 remain Par.
        assert!(count_kind(&lowered, MapKind::Par) > 0);
        // And the whole thing still typechecks identically.
        assert_eq!(typecheck(&body).unwrap(), typecheck(&lowered).unwrap());
    }

    #[test]
    fn sequentialise_leaves_layout_maps() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 8, 8)));
        let e = lift_core::ndim::slide2(3, 1, a);
        let seq = sequentialise(&e);
        assert_eq!(count_kind(&seq, MapKind::Seq), 0);
        assert!(count_kind(&seq, MapKind::Par) > 0);
    }

    #[test]
    fn sequentialise_lowers_reduce() {
        let (_, body) = stencil_1d(16);
        let seq = sequentialise(&body);
        let reduces = lift_core::visit::find_positions(&seq, &|node| {
            matches!(
                node.applied_pattern(),
                Some(Pattern::Reduce {
                    kind: ReduceKind::Seq,
                    ..
                })
            )
        });
        assert_eq!(reduces.len(), 1);
    }

    #[test]
    fn unroll_requires_constant_small_size() {
        let (_, body) = stencil_1d(16);
        let seq = sequentialise(&body);
        let unrolled = unroll(&seq, 32);
        let u = lift_core::visit::find_positions(&unrolled, &|node| {
            matches!(
                node.applied_pattern(),
                Some(Pattern::Reduce {
                    kind: ReduceKind::SeqUnroll,
                    ..
                })
            )
        });
        assert_eq!(u.len(), 1);
        // With a tiny limit nothing unrolls.
        let kept = unroll(&seq, 2);
        let u = lift_core::visit::find_positions(&kept, &|node| {
            matches!(
                node.applied_pattern(),
                Some(Pattern::Reduce {
                    kind: ReduceKind::SeqUnroll,
                    ..
                })
            )
        });
        assert_eq!(u.len(), 0);
    }

    #[test]
    fn coarsen_preserves_type_and_semantics() {
        let (prog, body) = stencil_1d(16);
        let factor = ArithExpr::from(4);
        let coarse = coarsen_innermost(&body, &factor).expect("coarsens");
        assert_eq!(typecheck(&body).unwrap(), typecheck(&coarse).unwrap());

        // Semantics: evaluate both against the reference interpreter.
        let FunDecl::Lambda(l) = &prog else { panic!() };
        let coarse_prog = FunDecl::lambda(l.params.clone(), coarse);
        let input = lift_core::eval::DataValue::from_f32s((0..16).map(|i| i as f32));
        let lhs = lift_core::eval::eval_fun(&prog, std::slice::from_ref(&input)).unwrap();
        let rhs = lift_core::eval::eval_fun(&coarse_prog, &[input]).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn is_layout_fun_classification() {
        assert!(is_layout_fun(&id()));
        assert!(is_layout_fun(&FunDecl::pattern(Pattern::Transpose)));
        let slide_lam = lam(Type::array(Type::f32(), 8), |x| slide(3, 1, x));
        assert!(is_layout_fun(&slide_lam));
        let compute = lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x]));
        assert!(!is_layout_fun(&compute));
    }
}
