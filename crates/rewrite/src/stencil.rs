//! Rank-generic recognition of the canonical stencil shapes produced by the
//! builder combinators (`map_nd ∘ slide_nd`, optionally through a deep
//! `zip_nd`).
//!
//! The single entry point is [`match_stencil_nd`], which destructures a
//! stencil application of any rank 1–3 into a [`StencilNd`]: the computing
//! per-element function, the per-dimension window sizes and steps, and the
//! *operands* — one or more windowed inputs (`slide_nd` compositions) plus
//! any element-wise grids zipped alongside them, as the multi-grid
//! benchmarks (Hotspot, SRAD, the §3.5 acoustic simulation) produce.

use lift_arith::ArithExpr;
use lift_core::expr::{Expr, FunDecl};
use lift_core::ndim::slide_reorder_depths;
use lift_core::pattern::{MapKind, Pattern};

/// One zipped component of a matched stencil application.
#[derive(Debug, Clone)]
pub enum Operand {
    /// A `slide_nd(sizes, steps, input)` composition; the payload is the
    /// slid input (typically a padded array).
    Windowed(Expr),
    /// An element-wise grid (or generated array) zipped alongside the
    /// neighbourhoods — one value per output element.
    Elementwise(Expr),
}

impl Operand {
    /// The operand's underlying expression.
    pub fn expr(&self) -> &Expr {
        match self {
            Operand::Windowed(e) | Operand::Elementwise(e) => e,
        }
    }

    /// Whether this operand is a `slide_nd` composition.
    pub fn is_windowed(&self) -> bool {
        matches!(self, Operand::Windowed(_))
    }
}

/// A matched rank-generic stencil application
/// `map_nd(f, slide_nd(sizes, steps, input))` — or, for multi-grid
/// stencils, `map_nd(f, zip_nd(operands…))` where at least one operand is a
/// `slide_nd` composition and every windowed operand shares the same
/// per-dimension window geometry.
#[derive(Debug, Clone)]
pub struct StencilNd {
    /// Grid rank (1–3).
    pub rank: usize,
    /// The stencil function (one neighbourhood — or tuple — per element).
    pub f: FunDecl,
    /// Per-dimension neighbourhood sizes, outermost first.
    pub sizes: Vec<ArithExpr>,
    /// Per-dimension neighbourhood steps, outermost first.
    pub steps: Vec<ArithExpr>,
    /// The zipped operands in order; a single-grid stencil has exactly one
    /// [`Operand::Windowed`] entry.
    pub operands: Vec<Operand>,
}

impl StencilNd {
    /// The first windowed operand's input expression (every stencil has at
    /// least one).
    pub fn windowed_input(&self) -> &Expr {
        self.operands
            .iter()
            .find(|o| o.is_windowed())
            .expect("a matched stencil always has a windowed operand")
            .expr()
    }
}

/// Destructures `Apply(Map(Par, f), [arg])`.
pub fn match_par_map(e: &Expr) -> Option<(&FunDecl, &Expr)> {
    let app = e.as_apply()?;
    match app.fun.as_pattern()? {
        Pattern::Map {
            kind: MapKind::Par,
            f,
        } => Some((f, &app.args[0])),
        _ => None,
    }
}

/// Recognises a function that *is* `map(g)` — the bare pattern or the
/// eta-expanded `λx. map(g, x)` the n-dimensional builders produce — and
/// returns the mapped function `g`.
pub fn fun_inner_map(f: &FunDecl) -> Option<&FunDecl> {
    match f {
        FunDecl::Pattern(p) => match p.as_ref() {
            Pattern::Map {
                kind: MapKind::Par,
                f,
            } => Some(f),
            _ => None,
        },
        FunDecl::Lambda(l) => {
            if l.params.len() != 1 {
                return None;
            }
            let app = l.body.as_apply()?;
            if app.args.len() != 1 {
                return None;
            }
            match &app.args[0] {
                Expr::Param(p) if p.id() == l.params[0].id() => {}
                _ => return None,
            }
            match app.fun.as_pattern()? {
                Pattern::Map {
                    kind: MapKind::Par,
                    f,
                } => Some(f),
                _ => None,
            }
        }
        FunDecl::UserFun(_) => None,
    }
}

/// Peels `depth` nested map levels off `f` (each level bare or
/// eta-expanded), returning the innermost function.
pub fn peel_map_levels(f: &FunDecl, depth: usize) -> Option<&FunDecl> {
    let mut cur = f;
    for _ in 0..depth {
        cur = fun_inner_map(cur)?;
    }
    Some(cur)
}

/// Recognises a function that *is* `slide(size, step)` — either the bare
/// pattern or an eta-expanded `λx. slide(size, step, x)`.
pub fn fun_as_slide(f: &FunDecl) -> Option<(ArithExpr, ArithExpr)> {
    match f {
        FunDecl::Pattern(p) => match p.as_ref() {
            Pattern::Slide { size, step } => Some((size.clone(), step.clone())),
            _ => None,
        },
        FunDecl::Lambda(l) => {
            if l.params.len() != 1 {
                return None;
            }
            let app = l.body.as_apply()?;
            if app.args.len() != 1 {
                return None;
            }
            match &app.args[0] {
                Expr::Param(p) if p.id() == l.params[0].id() => {}
                _ => return None,
            }
            match app.fun.as_pattern()? {
                Pattern::Slide { size, step } => Some((size.clone(), step.clone())),
                _ => None,
            }
        }
        FunDecl::UserFun(_) => None,
    }
}

/// Recognises a function that *is* `transpose` (bare or eta-expanded).
pub fn fun_is_transpose(f: &FunDecl) -> bool {
    match f {
        FunDecl::Pattern(p) => matches!(p.as_ref(), Pattern::Transpose),
        FunDecl::Lambda(l) => {
            if l.params.len() != 1 {
                return false;
            }
            let Some(app) = l.body.as_apply() else {
                return false;
            };
            if app.args.len() != 1 {
                return false;
            }
            let arg_is_param = matches!(
                &app.args[0],
                Expr::Param(p) if p.id() == l.params[0].id()
            );
            arg_is_param && matches!(app.fun.as_pattern(), Some(Pattern::Transpose))
        }
        FunDecl::UserFun(_) => false,
    }
}

/// Whether `f` is `transpose` under `depth` nested map levels.
fn fun_is_transpose_at(f: &FunDecl, depth: usize) -> bool {
    peel_map_levels(f, depth).is_some_and(fun_is_transpose)
}

/// Whether `f` is `slide(size, step)` under `depth` nested map levels.
fn fun_as_slide_at(f: &FunDecl, depth: usize) -> Option<(ArithExpr, ArithExpr)> {
    fun_as_slide(peel_map_levels(f, depth)?)
}

/// Destructures `map_nd(rank, f, input)` — `rank` nested parallel maps (as
/// the builders eta-expand them) around a *computing* `f`.
pub fn match_map_nd(e: &Expr, rank: usize) -> Option<(&FunDecl, &Expr)> {
    let (outer, arg) = match_par_map(e)?;
    let f = peel_map_levels(outer, rank - 1)?;
    if crate::lowering::is_layout_fun(f) {
        return None;
    }
    Some((f, arg))
}

/// Destructures the composition [`lift_core::ndim::slide_nd`] produces at
/// `rank`, returning `(sizes, steps, input)` outermost-dimension-first.
pub fn match_slide_nd(e: &Expr, rank: usize) -> Option<(Vec<ArithExpr>, Vec<ArithExpr>, &Expr)> {
    // Peel the transposes that moved the window dimensions innermost —
    // outermost application last, so peel the schedule in reverse.
    let mut cur = e;
    for depth in slide_reorder_depths(rank).into_iter().rev() {
        if depth == 0 {
            let app = cur.as_apply()?;
            if !matches!(app.fun.as_pattern(), Some(Pattern::Transpose)) {
                return None;
            }
            cur = &app.args[0];
        } else {
            let (t, rest) = match_par_map(cur)?;
            if !fun_is_transpose_at(t, depth - 1) {
                return None;
            }
            cur = rest;
        }
    }
    // Peel one slide per dimension, outermost first.
    let mut sizes = Vec::with_capacity(rank);
    let mut steps = Vec::with_capacity(rank);
    for d in 0..rank {
        if d == 0 {
            let app = cur.as_apply()?;
            let Pattern::Slide { size, step } = app.fun.as_pattern()? else {
                return None;
            };
            sizes.push(size.clone());
            steps.push(step.clone());
            cur = &app.args[0];
        } else {
            let (m, rest) = match_par_map(cur)?;
            let (size, step) = fun_as_slide_at(m, d - 1)?;
            sizes.push(size);
            steps.push(step);
            cur = rest;
        }
    }
    Some((sizes, steps, cur))
}

/// Destructures the canonical deep-zip composition
/// ([`lift_core::ndim::zip_nd`]) at `rank`, returning the zipped component
/// expressions in order.
fn match_zip_nd(e: &Expr, rank: usize) -> Option<Vec<&Expr>> {
    let (args, rezip) = if rank == 1 {
        let app = e.as_apply()?;
        let Pattern::Zip { .. } = app.fun.as_pattern()? else {
            return None;
        };
        (&app.args, None)
    } else {
        let (f, arg) = match_par_map(e)?;
        let app = arg.as_apply()?;
        let Pattern::Zip { .. } = app.fun.as_pattern()? else {
            return None;
        };
        (&app.args, Some(f))
    };
    if let Some(f) = rezip {
        if !fun_is_deep_rezip(f, rank - 1, args.len()) {
            return None;
        }
    }
    Some(args.iter().collect())
}

/// Whether `f` is the canonical re-zip lambda
/// `λt. zip_{rank}d(get(0, t), …, get(k−1, t))`.
fn fun_is_deep_rezip(f: &FunDecl, rank: usize, arity: usize) -> bool {
    let FunDecl::Lambda(l) = f else { return false };
    if l.params.len() != 1 {
        return false;
    }
    expr_is_rezip(&l.body, l.params[0].id(), rank, arity)
}

fn expr_is_rezip(e: &Expr, param_id: u32, rank: usize, arity: usize) -> bool {
    let zip_of_gets = |z: &Expr| -> bool {
        let Some(app) = z.as_apply() else {
            return false;
        };
        let Some(Pattern::Zip { .. }) = app.fun.as_pattern() else {
            return false;
        };
        app.args.len() == arity
            && app.args.iter().enumerate().all(|(i, a)| {
                let Some(inner) = a.as_apply() else {
                    return false;
                };
                matches!(inner.fun.as_pattern(), Some(Pattern::Get { index }) if *index == i)
                    && matches!(&inner.args[0], Expr::Param(p) if p.id() == param_id)
            })
    };
    if rank == 1 {
        return zip_of_gets(e);
    }
    let Some((g, arg)) = match_par_map(e) else {
        return false;
    };
    zip_of_gets(arg) && fun_is_deep_rezip(g, rank - 1, arity)
}

/// Matches a stencil application at a specific `rank`:
/// `map_nd(f, slide_nd(…))` or `map_nd(f, zip_nd(…))` with at least one
/// windowed component.
pub fn match_stencil_rank(e: &Expr, rank: usize) -> Option<StencilNd> {
    let (f, arg) = match_map_nd(e, rank)?;
    // Single windowed input.
    if let Some((sizes, steps, input)) = match_slide_nd(arg, rank) {
        return Some(StencilNd {
            rank,
            f: f.clone(),
            sizes,
            steps,
            operands: vec![Operand::Windowed(input.clone())],
        });
    }
    // Deep zip: every component is either a slide_nd composition (windowed)
    // or an element-wise grid; all windowed components must agree on the
    // per-dimension window geometry.
    let comps = match_zip_nd(arg, rank)?;
    let mut geometry: Option<(Vec<ArithExpr>, Vec<ArithExpr>)> = None;
    let mut operands = Vec::with_capacity(comps.len());
    for c in comps {
        match match_slide_nd(c, rank) {
            Some((sizes, steps, input)) => {
                match &geometry {
                    Some((s, st)) => {
                        if s != &sizes || st != &steps {
                            return None;
                        }
                    }
                    None => geometry = Some((sizes, steps)),
                }
                operands.push(Operand::Windowed(input.clone()));
            }
            None => operands.push(Operand::Elementwise(c.clone())),
        }
    }
    let (sizes, steps) = geometry?;
    Some(StencilNd {
        rank,
        f: f.clone(),
        sizes,
        steps,
        operands,
    })
}

/// Matches a stencil application of any rank, deepest rank first (so a 3D
/// stencil is never mistaken for a lower-rank one).
pub fn match_stencil_nd(e: &Expr) -> Option<StencilNd> {
    (1..=3).rev().find_map(|rank| match_stencil_rank(e, rank))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::ndim;
    use lift_core::prelude::*;

    fn sum3() -> FunDecl {
        lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        })
    }

    fn sum3x3() -> FunDecl {
        lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        })
    }

    fn sum3x3x3() -> FunDecl {
        lam(Type::array_3d(Type::f32(), 3, 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(join(nbh)))
        })
    }

    #[test]
    fn matches_1d_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 32)));
        let e = map(sum3(), slide(3, 1, pad(1, 1, Boundary::Clamp, a)));
        let st = match_stencil_nd(&e).expect("matches");
        assert_eq!(st.rank, 1);
        assert_eq!(st.sizes, vec![ArithExpr::from(3)]);
        assert_eq!(st.steps, vec![ArithExpr::from(1)]);
        assert_eq!(st.operands.len(), 1);
    }

    #[test]
    fn layout_map_is_not_a_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 8, 8)));
        // map(transpose) over slide output is layout plumbing, not a stencil.
        let e = ndim::slide2(3, 1, a);
        assert!(match_stencil_nd(&e).is_none());
    }

    #[test]
    fn matches_slide_nd_compositions() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 10, 10)));
        let e = ndim::slide2(3, 1, a);
        let (sizes, steps, _) = match_slide_nd(&e, 2).expect("matches");
        assert_eq!(sizes, vec![ArithExpr::from(3), ArithExpr::from(3)]);
        assert_eq!(steps, vec![ArithExpr::from(1), ArithExpr::from(1)]);

        let g = Expr::Param(Param::fresh("G", Type::array_3d(Type::f32(), 8, 9, 10)));
        let e = ndim::slide3(3, 1, g);
        let (sizes, steps, _) = match_slide_nd(&e, 3).expect("matches");
        assert_eq!(sizes, vec![ArithExpr::from(3); 3]);
        assert_eq!(steps, vec![ArithExpr::from(1); 3]);
    }

    #[test]
    fn matches_rectangular_slide_nd() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 10, 12)));
        let e = ndim::slide_nd(
            &[ArithExpr::from(3), ArithExpr::from(5)],
            &[ArithExpr::from(1), ArithExpr::from(1)],
            a,
        );
        let (sizes, _, _) = match_slide_nd(&e, 2).expect("matches");
        assert_eq!(sizes, vec![ArithExpr::from(3), ArithExpr::from(5)]);
    }

    #[test]
    fn matches_2d_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 10, 10)));
        let nbhs = ndim::slide2(3, 1, ndim::pad2(1, 1, Boundary::Clamp, a));
        let e = ndim::map2(sum3x3(), nbhs);
        let st = match_stencil_nd(&e).expect("matches");
        assert_eq!(st.rank, 2);
        assert_eq!(st.sizes[0], ArithExpr::from(3));
    }

    #[test]
    fn matches_3d_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array_3d(Type::f32(), 8, 8, 8)));
        let nbhs = ndim::slide3(3, 1, ndim::pad3(1, 1, Boundary::Clamp, a));
        let e = ndim::map3(sum3x3x3(), nbhs);
        let st = match_stencil_nd(&e).expect("matches");
        assert_eq!(st.rank, 3);
        assert_eq!(st.sizes, vec![ArithExpr::from(3); 3]);
        assert_eq!(st.operands.len(), 1);
        assert!(st.operands[0].is_windowed());
    }

    #[test]
    fn matches_zipped_multi_grid_stencil() {
        // Hotspot-style: one element-wise grid zipped with neighbourhoods.
        let t = Expr::Param(Param::fresh("T", Type::array_3d(Type::f32(), 6, 6, 6)));
        let p = Expr::Param(Param::fresh("P", Type::array_3d(Type::f32(), 6, 6, 6)));
        let nbhs = ndim::slide3(3, 1, ndim::pad3(1, 1, Boundary::Clamp, t));
        let tup = Type::Tuple(vec![Type::f32(), Type::array_3d(Type::f32(), 3, 3, 3)]);
        let f = lam(tup, |x| {
            call(&add_f32(), [get(0, x.clone()), at3(1, 1, 1, get(1, x))])
        });
        let e = ndim::map3(f, ndim::zip2_3d(p, nbhs));
        let st = match_stencil_nd(&e).expect("matches");
        assert_eq!(st.rank, 3);
        assert_eq!(st.operands.len(), 2);
        assert!(!st.operands[0].is_windowed());
        assert!(st.operands[1].is_windowed());
    }

    #[test]
    fn non_stencil_does_not_match() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 32)));
        let e = map(id(), a);
        assert!(match_stencil_nd(&e).is_none());
    }
}
