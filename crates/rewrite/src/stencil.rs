//! Recognisers for the canonical stencil shapes produced by the builder
//! combinators (`map ∘ slide`, `map2 ∘ slide2`, …).

use lift_arith::ArithExpr;
use lift_core::expr::{Expr, FunDecl};
use lift_core::pattern::{MapKind, Pattern};

/// A matched 1D stencil application `map(f, slide(size, step, input))`.
#[derive(Debug, Clone)]
pub struct Stencil1d {
    /// The stencil function (one neighbourhood → one element).
    pub f: FunDecl,
    /// Neighbourhood size.
    pub size: ArithExpr,
    /// Neighbourhood step.
    pub step: ArithExpr,
    /// The slid input (typically a padded array).
    pub input: Expr,
}

/// A matched 2D stencil application `map2(f, slide2(size, step, input))`.
#[derive(Debug, Clone)]
pub struct Stencil2d {
    /// The stencil function (2D neighbourhood → one element).
    pub f: FunDecl,
    /// Neighbourhood size (square).
    pub size: ArithExpr,
    /// Neighbourhood step.
    pub step: ArithExpr,
    /// The slid 2D input.
    pub input: Expr,
}

/// Destructures `Apply(Map(Par, f), [arg])`.
pub fn match_par_map(e: &Expr) -> Option<(&FunDecl, &Expr)> {
    let app = e.as_apply()?;
    match app.fun.as_pattern()? {
        Pattern::Map {
            kind: MapKind::Par,
            f,
        } => Some((f, &app.args[0])),
        _ => None,
    }
}

/// Recognises a function that *is* `slide(size, step)` — either the bare
/// pattern or an eta-expanded `λx. slide(size, step, x)`.
pub fn fun_as_slide(f: &FunDecl) -> Option<(ArithExpr, ArithExpr)> {
    match f {
        FunDecl::Pattern(p) => match p.as_ref() {
            Pattern::Slide { size, step } => Some((size.clone(), step.clone())),
            _ => None,
        },
        FunDecl::Lambda(l) => {
            if l.params.len() != 1 {
                return None;
            }
            let app = l.body.as_apply()?;
            if app.args.len() != 1 {
                return None;
            }
            match &app.args[0] {
                Expr::Param(p) if p.id() == l.params[0].id() => {}
                _ => return None,
            }
            match app.fun.as_pattern()? {
                Pattern::Slide { size, step } => Some((size.clone(), step.clone())),
                _ => None,
            }
        }
        FunDecl::UserFun(_) => None,
    }
}

/// Recognises a function that *is* `transpose` (bare or eta-expanded).
pub fn fun_is_transpose(f: &FunDecl) -> bool {
    match f {
        FunDecl::Pattern(p) => matches!(p.as_ref(), Pattern::Transpose),
        FunDecl::Lambda(l) => {
            if l.params.len() != 1 {
                return false;
            }
            let Some(app) = l.body.as_apply() else {
                return false;
            };
            if app.args.len() != 1 {
                return false;
            }
            let arg_is_param = matches!(
                &app.args[0],
                Expr::Param(p) if p.id() == l.params[0].id()
            );
            arg_is_param && matches!(app.fun.as_pattern(), Some(Pattern::Transpose))
        }
        FunDecl::UserFun(_) => false,
    }
}

/// Matches the composition `map(transpose) ∘ slide ∘ map(slide)` that
/// [`lift_core::ndim::slide2`] produces, returning `(size, step, input)`.
pub fn match_slide2(e: &Expr) -> Option<(ArithExpr, ArithExpr, &Expr)> {
    // map(transpose)(…)
    let (t, rest) = match_par_map(e)?;
    if !fun_is_transpose(t) {
        return None;
    }
    // slide(size, step)(…)
    let app = rest.as_apply()?;
    let (size, step) = match app.fun.as_pattern()? {
        Pattern::Slide { size, step } => (size.clone(), step.clone()),
        _ => return None,
    };
    // map(slide(size, step))(input)
    let (s, input) = match_par_map(&app.args[0])?;
    let (s2, st2) = fun_as_slide(s)?;
    if s2 != size || st2 != step {
        return None;
    }
    Some((size, step, input))
}

/// Matches the 1D stencil `map(f, slide(size, step, input))` where `f`
/// computes (is not a pure layout function).
pub fn match_stencil_1d(e: &Expr) -> Option<Stencil1d> {
    let (f, arg) = match_par_map(e)?;
    if crate::lowering::is_layout_fun(f) {
        return None;
    }
    let app = arg.as_apply()?;
    match app.fun.as_pattern()? {
        Pattern::Slide { size, step } => Some(Stencil1d {
            f: f.clone(),
            size: size.clone(),
            step: step.clone(),
            input: app.args[0].clone(),
        }),
        _ => None,
    }
}

/// Matches the 2D stencil `map2(f, slide2(size, step, input))`:
/// `map(λrow. map(f, row))` applied to a [`match_slide2`] shape.
pub fn match_stencil_2d(e: &Expr) -> Option<Stencil2d> {
    let (outer_f, arg) = match_par_map(e)?;
    // outer_f must be λrow. map(f, row) with computing f.
    let l = outer_f.as_lambda()?;
    if l.params.len() != 1 {
        return None;
    }
    let (inner_f, inner_arg) = match_par_map(&l.body)?;
    match inner_arg {
        Expr::Param(p) if p.id() == l.params[0].id() => {}
        _ => return None,
    }
    if crate::lowering::is_layout_fun(inner_f) {
        return None;
    }
    let (size, step, input) = match_slide2(arg)?;
    Some(Stencil2d {
        f: inner_f.clone(),
        size,
        step,
        input: input.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::prelude::*;

    fn sum3() -> FunDecl {
        lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        })
    }

    fn sum3x3() -> FunDecl {
        lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        })
    }

    #[test]
    fn matches_1d_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 32)));
        let e = map(sum3(), slide(3, 1, pad(1, 1, Boundary::Clamp, a)));
        let st = match_stencil_1d(&e).expect("matches");
        assert_eq!(st.size, ArithExpr::from(3));
        assert_eq!(st.step, ArithExpr::from(1));
    }

    #[test]
    fn layout_map_is_not_a_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 8, 8)));
        // map(transpose) over slide output is layout plumbing, not a stencil.
        let e = lift_core::ndim::slide2(3, 1, a);
        assert!(match_stencil_1d(&e).is_none());
    }

    #[test]
    fn matches_slide2_composition() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 10, 10)));
        let e = lift_core::ndim::slide2(3, 1, a);
        let (size, step, _) = match_slide2(&e).expect("matches");
        assert_eq!(size, ArithExpr::from(3));
        assert_eq!(step, ArithExpr::from(1));
    }

    #[test]
    fn matches_2d_stencil() {
        let a = Expr::Param(Param::fresh("A", Type::array_2d(Type::f32(), 10, 10)));
        let nbhs = lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a));
        let e = lift_core::ndim::map2(sum3x3(), nbhs);
        let st = match_stencil_2d(&e).expect("matches");
        assert_eq!(st.size, ArithExpr::from(3));
    }

    #[test]
    fn non_stencil_does_not_match() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 32)));
        let e = map(id(), a);
        assert!(match_stencil_1d(&e).is_none());
        assert!(match_stencil_2d(&e).is_none());
    }
}
