//! Exploration strategies: enumerating the lowered variants of a stencil
//! program with named tunable parameters.
//!
//! This encodes the search space the paper explores automatically: for each
//! benchmark Lift derives several low-level expressions (±overlapped tiling,
//! ±local memory, ±unrolling, ±thread coarsening) and each expression
//! carries numeric tunables (per-dimension tile sizes, coarsening factor;
//! the launch configuration is tuned separately by the harness). The
//! auto-tuner then picks the best (expression, parameters) pair per device.
//!
//! The tiling path is *rank-driven*: the unified [`match_stencil_nd`]
//! recogniser determines the stencil's rank (1–3), the tiled variants carry
//! one independent [`Tunable::TileSize`] per dimension (`TS0 … TSd−1`,
//! outermost first — the paper tunes tile sizes per dimension), and the
//! work-group lowering assigns one `mapWrg(d)`/`mapLcl(d)` pair per
//! dimension of the matched rank.

use lift_arith::ArithExpr;
use lift_core::expr::{Expr, FunDecl};
use lift_core::pattern::MapKind;
use lift_core::typecheck::{typecheck, typecheck_fun};

use crate::lowering::{coarsen_innermost, lower_grid, sequentialise, unroll};
use crate::rules::tile_anywhere;
use crate::stencil::match_stencil_nd;

/// A numeric parameter left symbolic in a [`Variant`], to be bound by the
/// auto-tuner before code generation.
#[derive(Debug, Clone, PartialEq)]
pub enum Tunable {
    /// An overlapped-tiling tile size `u` along *one* dimension (the
    /// rewrite fixed `v = u − (n − s)` on the same axis). A rank-`d` tiled
    /// variant carries `d` of these, named `TS0 … TSd−1` outermost first,
    /// each tuned independently.
    TileSize {
        /// The arithmetic variable name in the program (`TS<dim>`).
        var: String,
        /// Neighbourhood size `n` along this dimension.
        nbh_size: i64,
        /// Neighbourhood step `s` along this dimension.
        nbh_step: i64,
        /// Padded input extent along this dimension.
        len: i64,
    },
    /// A thread-coarsening factor (elements per thread).
    CoarsenFactor {
        /// The arithmetic variable name in the program.
        var: String,
        /// The length of the coarsened dimension (the factor must divide
        /// it).
        len: i64,
    },
}

impl Tunable {
    /// The variable name bound by the tuner.
    pub fn var(&self) -> &str {
        match self {
            Tunable::TileSize { var, .. } | Tunable::CoarsenFactor { var, .. } => var,
        }
    }

    /// Whether `value` is a legal assignment.
    pub fn is_valid(&self, value: i64) -> bool {
        match self {
            Tunable::TileSize {
                nbh_size,
                nbh_step,
                len,
                ..
            } => {
                let halo = nbh_size - nbh_step;
                let v = value - halo;
                value >= *nbh_size && v > 0 && value <= *len && (*len - value) % v == 0
            }
            Tunable::CoarsenFactor { len, .. } => value >= 1 && len % value == 0,
        }
    }

    /// All legal assignments up to `max` (ascending).
    pub fn candidates(&self, max: i64) -> Vec<i64> {
        (1..=max).filter(|v| self.is_valid(*v)).collect()
    }
}

/// One lowered implementation candidate of a stencil program.
#[derive(Debug, Clone)]
pub struct Variant {
    /// A short descriptive name (`"global"`, `"tiled-local-unroll"`, …).
    pub name: String,
    /// The lowered program (tunables still symbolic).
    pub program: FunDecl,
    /// The tunables appearing in the program.
    pub tunables: Vec<Tunable>,
    /// Grid dimensionality (1–3) of the output.
    pub dims: usize,
    /// Whether overlapped tiling was applied.
    pub tiled: bool,
    /// Whether tiles are staged through local memory.
    pub local_mem: bool,
    /// Whether inner loops were unrolled.
    pub unrolled: bool,
    /// Whether the outermost (z) grid dimension is strip-mined into a
    /// sequential per-thread loop instead of being spread across the
    /// NDRange (the PPCG 3D mapping). Launch derivation must not scale the
    /// z global size by the output extent when this is set.
    pub strip_mined_z: bool,
}

fn glb_kinds(dims: usize) -> Vec<MapKind> {
    (0..dims).rev().map(|d| MapKind::Glb(d as u8)).collect()
}

fn rebuild(prog: &FunDecl, body: Expr) -> FunDecl {
    match prog {
        FunDecl::Lambda(l) => FunDecl::lambda(l.params.clone(), body),
        _ => unreachable!("programs are top-level lambdas"),
    }
}

/// The unroll limit: covers every neighbourhood in the benchmark suite
/// (5×5 = 25 points, 3³ = 27 points) without unrolling tile-sized loops.
const UNROLL_LIMIT: i64 = 32;

/// Enumerates the implementation space of a stencil program.
///
/// `prog` must be a top-level lambda producing a 1–3D grid, with concrete
/// sizes. Variants that require a recognisable `map_n ∘ slide_n` stencil
/// shape (tiling) are emitted only when the shape matches; every program
/// gets at least the `global` variants.
///
/// # Panics
///
/// Panics if `prog` is not a lambda or is ill-typed — the input comes from
/// the benchmark suite, so this is a programming error, not user input.
pub fn enumerate_variants(prog: &FunDecl) -> Vec<Variant> {
    let out_ty = typecheck_fun(prog).expect("ill-typed program");
    let dims = out_ty.dims();
    assert!((1..=3).contains(&dims), "unsupported dimensionality {dims}");
    let body = match prog {
        FunDecl::Lambda(l) => &l.body,
        _ => panic!("program must be a top-level lambda"),
    };

    let mut variants = Vec::new();

    // --- global (one thread per element) --------------------------------
    let global = sequentialise(&lower_grid(body, &glb_kinds(dims)));
    variants.push(Variant {
        name: "global".into(),
        program: rebuild(prog, global.clone()),
        tunables: vec![],
        dims,
        tiled: false,
        local_mem: false,
        unrolled: false,
        strip_mined_z: false,
    });
    variants.push(Variant {
        name: "global-unroll".into(),
        program: rebuild(prog, unroll(&global, UNROLL_LIMIT)),
        tunables: vec![],
        dims,
        tiled: false,
        local_mem: false,
        unrolled: true,
        strip_mined_z: false,
    });

    // --- thread coarsening ----------------------------------------------
    let cf = ArithExpr::var("CF");
    if let Some(coarse) = coarsen_innermost(body, &cf) {
        let mut kinds = glb_kinds(dims);
        kinds.push(MapKind::Seq);
        let lowered = unroll(&sequentialise(&lower_grid(&coarse, &kinds)), UNROLL_LIMIT);
        let innermost_len = out_ty.shape().last().and_then(|n| n.as_cst()).unwrap_or(0);
        if innermost_len > 0 {
            variants.push(Variant {
                name: "coarsened".into(),
                program: rebuild(prog, lowered),
                tunables: vec![Tunable::CoarsenFactor {
                    var: "CF".into(),
                    len: innermost_len,
                }],
                dims,
                tiled: false,
                local_mem: false,
                unrolled: true,
                strip_mined_z: false,
            });
        }
    }

    // --- overlapped tiling ------------------------------------------------
    if let Some(info) = find_tile_info(body) {
        let tile_vars = info.tile_vars();
        for (use_local, suffix) in [(false, "tiled"), (true, "tiled-local")] {
            if let Some(tiled) = tile_anywhere(body, &tile_vars, use_local) {
                // One Wrg/Lcl pair per dimension of the *matched* rank,
                // outermost dimension on the highest OpenCL index.
                let kinds: Vec<MapKind> = (0..info.rank)
                    .rev()
                    .map(|d| MapKind::Wrg(d as u8))
                    .chain((0..info.rank).rev().map(|d| MapKind::Lcl(d as u8)))
                    .collect();
                let lowered = sequentialise(&lower_grid(&tiled, &kinds));
                let tunables = info.tile_tunables();
                variants.push(Variant {
                    name: suffix.into(),
                    program: rebuild(prog, lowered.clone()),
                    tunables: tunables.clone(),
                    dims,
                    tiled: true,
                    local_mem: use_local,
                    unrolled: false,
                    strip_mined_z: false,
                });
                variants.push(Variant {
                    name: format!("{suffix}-unroll"),
                    program: rebuild(prog, unroll(&lowered, UNROLL_LIMIT)),
                    tunables,
                    dims,
                    tiled: true,
                    local_mem: use_local,
                    unrolled: true,
                    strip_mined_z: false,
                });
            }
        }
    }

    variants
}

/// The tileable-stencil facts exploration needs: the matched rank and, per
/// dimension (outermost first), the neighbourhood geometry and the padded
/// input extent.
pub struct StencilInfo {
    /// Matched stencil rank (1–3).
    pub rank: usize,
    /// Neighbourhood size per dimension.
    pub sizes: Vec<i64>,
    /// Neighbourhood step per dimension.
    pub steps: Vec<i64>,
    /// Padded (windowed-input) extent per dimension.
    pub lens: Vec<i64>,
}

impl StencilInfo {
    /// The per-dimension tile-size variables (`TS0 … TSd−1`, outermost
    /// first) the tiling rewrite leaves symbolic.
    pub fn tile_vars(&self) -> Vec<ArithExpr> {
        (0..self.rank)
            .map(|d| ArithExpr::var(format!("TS{d}")))
            .collect()
    }

    /// The matching per-dimension [`Tunable::TileSize`] declarations —
    /// the single source of the `TS<dim>` naming scheme shared by the Lift
    /// exploration and the PPCG baseline.
    pub fn tile_tunables(&self) -> Vec<Tunable> {
        (0..self.rank)
            .map(|d| Tunable::TileSize {
                var: format!("TS{d}"),
                nbh_size: self.sizes[d],
                nbh_step: self.steps[d],
                len: self.lens[d],
            })
            .collect()
    }
}

/// Finds the first recognisable stencil in `body` with fully concrete
/// geometry (sizes, steps, and windowed-input extents).
pub fn find_tile_info(body: &Expr) -> Option<StencilInfo> {
    let mut result = None;
    lift_core::visit::walk(body, &mut |node| {
        if result.is_some() {
            return;
        }
        let Some(st) = match_stencil_nd(node) else {
            return;
        };
        let sizes: Option<Vec<i64>> = st.sizes.iter().map(ArithExpr::as_cst).collect();
        let steps: Option<Vec<i64>> = st.steps.iter().map(ArithExpr::as_cst).collect();
        let (Some(sizes), Some(steps)) = (sizes, steps) else {
            return;
        };
        let Ok(t) = typecheck(st.windowed_input()) else {
            return;
        };
        let lens: Vec<i64> = t
            .shape()
            .iter()
            .take(st.rank)
            .filter_map(ArithExpr::as_cst)
            .collect();
        if lens.len() == st.rank {
            result = Some(StencilInfo {
                rank: st.rank,
                sizes,
                steps,
                lens,
            });
        }
    });
    result
}

/// Binds a variant's tunables and returns the concrete program, or `None`
/// if any value is invalid.
pub fn bind_tunables(variant: &Variant, values: &[(String, i64)]) -> Option<FunDecl> {
    for t in &variant.tunables {
        let v = values.iter().find(|(n, _)| n == t.var())?.1;
        if !t.is_valid(v) {
            return None;
        }
    }
    let bindings = lift_arith::Bindings::from_iter(values.iter().map(|(n, v)| (n.as_str(), *v)));
    Some(lift_codegen_substitute(&variant.program, &bindings))
}

// Local re-implementation of size substitution to avoid a dependency cycle:
// the rewrite crate sits below codegen in the build graph.
fn lift_codegen_substitute(f: &FunDecl, b: &lift_arith::Bindings) -> FunDecl {
    subst_fun(f, b, &mut std::collections::HashMap::new())
}

type PMap = std::collections::HashMap<u32, lift_core::expr::ParamRef>;

fn subst_type(t: &lift_core::types::Type, b: &lift_arith::Bindings) -> lift_core::types::Type {
    use lift_core::types::Type;
    match t {
        Type::Scalar(_) => t.clone(),
        Type::Tuple(ts) => Type::Tuple(ts.iter().map(|x| subst_type(x, b)).collect()),
        Type::Array(e, n) => Type::Array(Box::new(subst_type(e, b)), subst_arith(n, b)),
    }
}

fn subst_arith(e: &ArithExpr, b: &lift_arith::Bindings) -> ArithExpr {
    let map: std::collections::BTreeMap<lift_arith::Name, ArithExpr> = b
        .iter()
        .map(|(k, v)| (lift_arith::Name::from(k), ArithExpr::from(v)))
        .collect();
    e.substitute_all(&map)
}

fn subst_fun(f: &FunDecl, b: &lift_arith::Bindings, pm: &mut PMap) -> FunDecl {
    use lift_core::expr::Param;
    match f {
        FunDecl::Lambda(l) => {
            let params: Vec<_> = l
                .params
                .iter()
                .map(|p| {
                    let fresh = Param::fresh(p.name(), subst_type(p.ty(), b));
                    pm.insert(p.id(), fresh.clone());
                    fresh
                })
                .collect();
            FunDecl::lambda(params, subst_expr(&l.body, b, pm))
        }
        FunDecl::UserFun(_) => f.clone(),
        FunDecl::Pattern(p) => FunDecl::pattern(subst_pattern(p, b, pm)),
    }
}

fn subst_expr(e: &Expr, b: &lift_arith::Bindings, pm: &mut PMap) -> Expr {
    match e {
        Expr::Param(p) => pm
            .get(&p.id())
            .map(|f| Expr::Param(f.clone()))
            .unwrap_or_else(|| e.clone()),
        Expr::Literal(_) => e.clone(),
        Expr::Apply(app) => {
            let fun = subst_fun(&app.fun, b, pm);
            let args: Vec<Expr> = app.args.iter().map(|a| subst_expr(a, b, pm)).collect();
            Expr::apply(fun, args)
        }
    }
}

fn subst_pattern(
    p: &lift_core::pattern::Pattern,
    b: &lift_arith::Bindings,
    pm: &mut PMap,
) -> lift_core::pattern::Pattern {
    use lift_core::pattern::Pattern;
    let s = |e: &ArithExpr| subst_arith(e, b);
    match p {
        Pattern::Map { kind, f } => Pattern::Map {
            kind: *kind,
            f: subst_fun(f, b, pm),
        },
        Pattern::Reduce { kind, f } => Pattern::Reduce {
            kind: *kind,
            f: subst_fun(f, b, pm),
        },
        Pattern::Iterate { times, f } => Pattern::Iterate {
            times: s(times),
            f: subst_fun(f, b, pm),
        },
        Pattern::ToLocal { f } => Pattern::ToLocal {
            f: subst_fun(f, b, pm),
        },
        Pattern::ToGlobal { f } => Pattern::ToGlobal {
            f: subst_fun(f, b, pm),
        },
        Pattern::ToPrivate { f } => Pattern::ToPrivate {
            f: subst_fun(f, b, pm),
        },
        Pattern::Split { chunk } => Pattern::Split { chunk: s(chunk) },
        Pattern::Slide { size, step } => Pattern::Slide {
            size: s(size),
            step: s(step),
        },
        Pattern::Pad {
            left,
            right,
            boundary,
        } => Pattern::Pad {
            left: s(left),
            right: s(right),
            boundary: *boundary,
        },
        Pattern::PadValue { left, right, value } => Pattern::PadValue {
            left: s(left),
            right: s(right),
            value: *value,
        },
        Pattern::At { index } => Pattern::At { index: s(index) },
        Pattern::ArrayGen { fun, sizes } => Pattern::ArrayGen {
            fun: fun.clone(),
            sizes: sizes.iter().map(s).collect(),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::prelude::*;

    fn jacobi1d(n: i64) -> FunDecl {
        lam_named("A", Type::array(Type::f32(), n), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), nbh)
            });
            map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        })
    }

    fn jacobi2d(n: i64) -> FunDecl {
        lam_named("A", Type::array_2d(Type::f32(), n, n), |a| {
            let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), join(nbh))
            });
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        })
    }

    #[test]
    fn enumerates_expected_variants_1d() {
        let vs = enumerate_variants(&jacobi1d(30));
        let names: Vec<&str> = vs.iter().map(|v| v.name.as_str()).collect();
        assert!(names.contains(&"global"));
        assert!(names.contains(&"global-unroll"));
        assert!(names.contains(&"coarsened"));
        assert!(names.contains(&"tiled"));
        assert!(names.contains(&"tiled-local"));
        assert!(names.contains(&"tiled-local-unroll"));
    }

    fn jacobi3d(n: i64) -> FunDecl {
        lam_named("A", Type::array_3d(Type::f32(), n, n, n), |a| {
            let f = lam(Type::array_3d(Type::f32(), 3, 3, 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), join(join(nbh)))
            });
            lift_core::ndim::map3(
                f,
                lift_core::ndim::slide3(3, 1, lift_core::ndim::pad3(1, 1, Boundary::Clamp, a)),
            )
        })
    }

    #[test]
    fn enumerates_expected_variants_2d() {
        let vs = enumerate_variants(&jacobi2d(14));
        let names: Vec<&str> = vs.iter().map(|v| v.name.as_str()).collect();
        assert!(names.contains(&"tiled-local"), "got {names:?}");
        let tiled = vs.iter().find(|v| v.name == "tiled").unwrap();
        assert_eq!(tiled.tunables.len(), 2, "one tile size per dimension");
        for (d, t) in tiled.tunables.iter().enumerate() {
            match t {
                Tunable::TileSize {
                    var,
                    nbh_size,
                    nbh_step,
                    len,
                } => {
                    assert_eq!(var, &format!("TS{d}"));
                    assert_eq!(*nbh_size, 3);
                    assert_eq!(*nbh_step, 1);
                    assert_eq!(*len, 16); // padded
                }
                other => panic!("unexpected tunable {other:?}"),
            }
        }
    }

    #[test]
    fn enumerates_tiled_variants_3d_with_per_dimension_tunables() {
        let vs = enumerate_variants(&jacobi3d(6));
        let names: Vec<&str> = vs.iter().map(|v| v.name.as_str()).collect();
        for want in ["tiled", "tiled-local", "tiled-unroll", "tiled-local-unroll"] {
            assert!(names.contains(&want), "missing {want}, got {names:?}");
        }
        let tiled = vs.iter().find(|v| v.name == "tiled-local").unwrap();
        assert_eq!(tiled.dims, 3);
        assert!(tiled.tiled && tiled.local_mem);
        let vars: Vec<&str> = tiled.tunables.iter().map(|t| t.var()).collect();
        assert_eq!(vars, vec!["TS0", "TS1", "TS2"]);
    }

    #[test]
    fn tile_size_validity() {
        let t = Tunable::TileSize {
            var: "TS0".into(),
            nbh_size: 3,
            nbh_step: 1,
            len: 16,
        };
        // v = u − 2 must divide 16 − u.
        assert!(t.is_valid(4)); // v=2, (16−4)%2 == 0
        assert!(t.is_valid(16)); // one tile
        assert!(!t.is_valid(2)); // smaller than the neighbourhood
        assert!(!t.is_valid(5)); // v=3, (16−5)%3 ≠ 0
        assert_eq!(t.candidates(16), vec![3, 4, 9, 16]);
    }

    #[test]
    fn per_dimension_tile_sizes_are_independent() {
        // A non-cubic grid: each dimension gets its own validity domain.
        let prog = lam_named("A", Type::array_2d(Type::f32(), 14, 30), |a| {
            let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), join(nbh))
            });
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        });
        let vs = enumerate_variants(&prog);
        let tiled = vs.iter().find(|v| v.name == "tiled").unwrap();
        let t0 = &tiled.tunables[0];
        let t1 = &tiled.tunables[1];
        assert_eq!(t0.candidates(16), vec![3, 4, 9, 16]); // len 16
        assert_eq!(t1.candidates(32), vec![3, 4, 5, 7, 8, 12, 17, 32]); // len 32
                                                                        // Binding them independently concretises the program.
        let bound = bind_tunables(tiled, &[("TS0".into(), 4), ("TS1".into(), 12)]).expect("valid");
        assert_eq!(
            typecheck_fun(&bound).unwrap(),
            typecheck_fun(&prog).unwrap()
        );
    }

    #[test]
    fn coarsen_factor_validity() {
        let t = Tunable::CoarsenFactor {
            var: "CF".into(),
            len: 12,
        };
        assert_eq!(t.candidates(12), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn variants_typecheck_to_same_type() {
        let prog = jacobi2d(14);
        let want = typecheck_fun(&prog).unwrap();
        for v in enumerate_variants(&prog) {
            if v.tunables.is_empty() {
                assert_eq!(
                    typecheck_fun(&v.program).unwrap(),
                    want,
                    "variant {} changed the type",
                    v.name
                );
            }
        }
    }

    #[test]
    fn bind_tunables_concretises() {
        let prog = jacobi2d(14);
        let vs = enumerate_variants(&prog);
        let tiled = vs.iter().find(|v| v.name == "tiled").unwrap();
        let bound = bind_tunables(tiled, &[("TS0".into(), 4), ("TS1".into(), 4)]).expect("valid");
        // Fully concrete now: typechecks to the same type as the original.
        assert_eq!(
            typecheck_fun(&bound).unwrap(),
            typecheck_fun(&prog).unwrap()
        );
        // Invalid tile size is rejected.
        assert!(bind_tunables(tiled, &[("TS0".into(), 5), ("TS1".into(), 4)]).is_none());
        // Missing per-dimension values are rejected.
        assert!(bind_tunables(tiled, &[("TS0".into(), 4)]).is_none());
    }
}
