//! Optimisations as rewrite rules (§4 of the paper).
//!
//! Lift's central design decision is that every optimisation — algorithmic
//! and device-specific — is a *semantics-preserving rewrite rule* applied to
//! the functional IR. This crate provides:
//!
//! * [`rules`] — the paper's stencil rules: **overlapped tiling** in 1D
//!   (`map f ∘ slide n s ↦ join ∘ map(map f ∘ slide n s) ∘ slide u v` with
//!   `u − v = n − s`) and 2D (with the transpose bookkeeping of §4.1), its
//!   two decomposed correctness halves, classic map fusion, the
//!   local-memory rule `map(id) ↦ toLocal(map(id))` (§4.2), and loop
//!   unrolling via `reduceUnroll` (§4.3);
//! * [`lowering`] — the rules that map high-level `map`s onto the OpenCL
//!   thread hierarchy (`mapGlb`/`mapWrg`/`mapLcl`/`mapSeq`) and thread
//!   coarsening via `split`/`join`;
//! * [`stencil`] — recognisers for the canonical
//!   `map_n(f) ∘ slide_n ∘ pad_n` stencil shapes the builders produce;
//! * [`strategy`] — the exploration: enumerate the lowered variants
//!   (±tiling, ±local memory, ±unrolling, ±coarsening) with named tunable
//!   parameters for the auto-tuner, mirroring the paper's automatic search.
//!
//! Every rule is typed-checked-preserving by construction and validated
//! against the reference evaluator in this crate's tests.

pub mod lowering;
pub mod rules;
pub mod stencil;
pub mod strategy;

pub use strategy::{enumerate_variants, Tunable, Variant};
