//! Optimisations as rewrite rules (§4 of the paper).
//!
//! Lift's central design decision is that every optimisation — algorithmic
//! and device-specific — is a *semantics-preserving rewrite rule* applied to
//! the functional IR. This crate provides:
//!
//! * [`rules`] — the paper's stencil rules: **rank-generic overlapped
//!   tiling** (`map_nd f ∘ slide_nd n s ↦ reassemble ∘ map_nd(map_nd f ∘
//!   slide_nd n s) ∘ slide_nd u v` with the per-dimension constraint
//!   `u_d − v_d = n_d − s_d`, covering the paper's 1D/2D rules of §4.1 and
//!   their 3D extension — including multi-grid stencils zipped with
//!   element-wise operands), its two decomposed correctness halves, classic
//!   map fusion, the local-memory rule `map(id) ↦ toLocal(map(id))` (§4.2)
//!   with rank-generic `mapLcl` staging copies, and loop unrolling via
//!   `reduceUnroll` (§4.3);
//! * [`lowering`] — the rules that map high-level `map`s onto the OpenCL
//!   thread hierarchy (`mapGlb`/`mapWrg`/`mapLcl`/`mapSeq`) and thread
//!   coarsening via `split`/`join`;
//! * [`stencil`] — the unified rank-generic recogniser
//!   ([`stencil::match_stencil_nd`]) for the canonical
//!   `map_nd(f) ∘ slide_nd ∘ pad_nd` stencil shapes the builders produce,
//!   ranks 1–3, optionally through a deep `zip_nd` of windowed and
//!   element-wise operands;
//! * [`strategy`] — the exploration: enumerate the lowered variants
//!   (±tiling, ±local memory, ±unrolling, ±coarsening) with named tunable
//!   parameters — one independent tile size per dimension (`TS0 … TSd−1`)
//!   — for the auto-tuner, mirroring the paper's automatic search.
//!
//! Every rule is typed-checked-preserving by construction and validated
//! against the reference evaluator in this crate's tests.

#![forbid(unsafe_code)]

pub mod lowering;
pub mod rules;
pub mod stencil;
pub mod strategy;

pub use strategy::{enumerate_variants, Tunable, Variant};
