//! The overlapped-tiling rewrite rule (§4.1) applied step by step, with the
//! reference evaluator proving each step semantics-preserving.
//!
//! ```text
//! cargo run --example rewrite_derivation
//! ```

use lift::lift_arith::ArithExpr;
use lift::lift_core::eval::{eval_fun, DataValue};
use lift::lift_core::prelude::*;
use lift::lift_rewrite::rules::{map_fusion, tile_anywhere};

fn main() {
    let n = 18usize;
    let sum_nbh = lam_named("nbh", Type::array(Type::f32(), 3), |nbh| {
        reduce(add_f32(), Expr::f32(0.0), nbh)
    });
    let prog = lam_named("A", Type::array(Type::f32(), n), |a| {
        map(sum_nbh, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    });
    let FunDecl::Lambda(l) = &prog else {
        unreachable!()
    };

    println!("== original ==");
    println!("{}\n", l.body);
    println!("type: {}\n", typecheck(&l.body).unwrap());

    // Apply the overlapped tiling rule with tile size u = 5 (so v = 3,
    // satisfying the constraint u − v = size − step = 2).
    let tiled = tile_anywhere(&l.body, &[ArithExpr::from(5)], false).expect("rule applies");
    println!("== after overlapped tiling (u = 5, v = 3) ==");
    println!("{}\n", tiled);
    println!("type: {}  (unchanged)\n", typecheck(&tiled).unwrap());

    // Prove semantic preservation on concrete data.
    let input = DataValue::from_f32s((0..n).map(|i| (i as f32) - 7.5));
    let before = eval_fun(&prog, std::slice::from_ref(&input))
        .unwrap()
        .flatten_f32();
    let tiled_prog = FunDecl::lambda(l.params.clone(), tiled);
    let after = eval_fun(&tiled_prog, std::slice::from_ref(&input))
        .unwrap()
        .flatten_f32();
    assert_eq!(before, after);
    println!(
        "evaluator check: both sides produce {:?}...\n",
        &before[..4]
    );

    // A second rule: classic map fusion.
    let double = lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x]));
    let inc = lam(Type::f32(), |x| call(&add_f32(), [x, Expr::f32(1.0)]));
    let two_maps = lam_named("B", Type::array(Type::f32(), 8), move |b| {
        map(double, map(inc, b))
    });
    let FunDecl::Lambda(l2) = &two_maps else {
        unreachable!()
    };
    println!("== map fusion ==");
    println!("before: {}", l2.body);
    let fused = map_fusion(&l2.body).expect("rule applies");
    println!("after:  {fused}");
    let input = DataValue::from_f32s([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let lhs = eval_fun(&two_maps, std::slice::from_ref(&input)).unwrap();
    let rhs = eval_fun(&FunDecl::lambda(l2.params.clone(), fused), &[input]).unwrap();
    assert_eq!(lhs, rhs);
    println!("\nevaluator check: fusion preserves semantics. QED (by testing).");
}
