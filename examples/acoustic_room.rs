//! The paper's §3.5 case study: a 3D room-acoustics simulation, time-stepped
//! on the host exactly as real wave solvers do (the paper evaluates a single
//! iteration per kernel; time stepping swaps buffers between launches).
//!
//! A pressure impulse is placed in the middle of the room; the example runs
//! several leapfrog steps on the virtual GPU via the pipeline's
//! `run_iterated` and tracks the wavefront.
//!
//! ```text
//! cargo run --release --example acoustic_room
//! ```

use lift::lift_oclsim::{BufferData, DeviceProfile, Rotation, VirtualDevice};
use lift::{LiftError, Pipeline};

fn main() -> Result<(), LiftError> {
    let sizes = [16usize, 24, 24];
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);

    // Lower the §3.5 expression (zip3 of point grid, slide3 neighbourhoods
    // and the generated neighbour-count mask) to an unrolled global kernel.
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let kernel = Pipeline::for_benchmark("Acoustic", &sizes)?
        .explore()?
        .on(&dev)
        .with_config("global-unroll", &[("lx", 8), ("ly", 4), ("lz", 1)])?;
    println!(
        "acoustic kernel: {} lines of OpenCL",
        kernel.source().lines().count()
    );

    // Impulse in the middle of the room.
    let prev = vec![0.0f32; nz * ny * nx];
    let mut cur = vec![0.0f32; nz * ny * nx];
    cur[(nz / 2 * ny + ny / 2) * nx + nx / 2] = 1.0;

    println!("\nstep |   energy   | wavefront radius (cells)");
    let mut state = [BufferData::F32(prev), BufferData::F32(cur)];
    let mut total_time = 0.0;
    for step in 0..8 {
        // One leapfrog step per launch; the runtime rotates prev/cur.
        let out = kernel.run_iterated(&state, 1, Rotation::Leapfrog)?;
        total_time += out.time_s;
        let next = out.output.as_f32().to_vec();

        // Wavefront: farthest cell with noticeable pressure.
        let mut radius: f64 = 0.0;
        let mut energy = 0.0f64;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let v = next[(z * ny + y) * nx + x];
                    energy += (v as f64) * (v as f64);
                    if v.abs() > 1e-4 {
                        let dz = z as f64 - (nz / 2) as f64;
                        let dy = y as f64 - (ny / 2) as f64;
                        let dx = x as f64 - (nx / 2) as f64;
                        radius = radius.max((dz * dz + dy * dy + dx * dx).sqrt());
                    }
                }
            }
        }
        println!("{step:>4} | {energy:>10.4e} | {radius:>6.2}");

        state = [state[1].clone(), BufferData::F32(next)];
    }
    println!(
        "\n8 steps on the virtual {} took {:.2} us (modeled kernel time)",
        kernel.device().profile().name,
        total_time * 1e6
    );
    println!("The wavefront expands roughly one cell per step: the 7-point");
    println!("leapfrog update propagates pressure to face neighbours only.");
    Ok(())
}
