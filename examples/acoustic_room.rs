//! The paper's §3.5 case study: a 3D room-acoustics simulation, time-stepped
//! on the host exactly as real wave solvers do (the paper evaluates a single
//! iteration per kernel; time stepping swaps buffers between launches).
//!
//! A pressure impulse is placed in the middle of the room; the example runs
//! several leapfrog steps on the virtual GPU and tracks the wavefront.
//!
//! ```text
//! cargo run --release --example acoustic_room
//! ```

use lift::lift_codegen::compile_kernel;
use lift::lift_oclsim::{BufferData, DeviceProfile, LaunchConfig, VirtualDevice};
use lift::lift_stencils::by_name;

fn main() {
    let bench = by_name("Acoustic");
    let sizes = [16usize, 24, 24];
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);

    // Lower the §3.5 expression (zip3 of point grid, slide3 neighbourhoods
    // and the generated neighbour-count mask) to a global kernel.
    let prog = bench.program(&sizes);
    let variants = lift::lift_rewrite::enumerate_variants(&prog);
    let lowered = &variants
        .iter()
        .find(|v| v.name == "global-unroll")
        .expect("variant exists")
        .program;
    let kernel = compile_kernel("acoustic", lowered).expect("compiles");
    println!(
        "acoustic kernel: {} lines of OpenCL",
        kernel.to_source().lines().count()
    );

    // Impulse in the middle of the room.
    let mut prev = vec![0.0f32; nz * ny * nx];
    let mut cur = vec![0.0f32; nz * ny * nx];
    cur[(nz / 2 * ny + ny / 2) * nx + nx / 2] = 1.0;

    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let launch = LaunchConfig::d3([nx, ny, nz], [8, 4, 1]);

    println!("\nstep |   energy   | wavefront radius (cells)");
    let mut total_time = 0.0;
    for step in 0..8 {
        let out = dev
            .run(
                &kernel,
                &[
                    BufferData::F32(prev.clone()),
                    BufferData::F32(cur.clone()),
                ],
                launch,
            )
            .expect("runs");
        total_time += out.time_s;
        let next = out.output.as_f32().to_vec();

        // Wavefront: farthest cell with noticeable pressure.
        let mut radius: f64 = 0.0;
        let mut energy = 0.0f64;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let v = next[(z * ny + y) * nx + x];
                    energy += (v as f64) * (v as f64);
                    if v.abs() > 1e-4 {
                        let dz = z as f64 - (nz / 2) as f64;
                        let dy = y as f64 - (ny / 2) as f64;
                        let dx = x as f64 - (nx / 2) as f64;
                        radius = radius.max((dz * dz + dy * dy + dx * dx).sqrt());
                    }
                }
            }
        }
        println!("{step:>4} | {energy:>10.4e} | {radius:>6.2}");

        prev = cur;
        cur = next;
    }
    println!(
        "\n8 steps on the virtual {} took {:.2} us (modeled kernel time)",
        dev.profile().name,
        total_time * 1e6
    );
    println!("The wavefront expands roughly one cell per step: the 7-point");
    println!("leapfrog update propagates pressure to face neighbours only.");
}
