//! Quickstart: the paper's Listing 2 — a 3-point Jacobi stencil — from
//! high-level expression to executed OpenCL kernel.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lift::lift_codegen::compile_kernel;
use lift::lift_core::prelude::*;
use lift::lift_oclsim::{DeviceProfile, LaunchConfig, VirtualDevice};

fn main() {
    let n = 32usize;

    // Listing 2 of the paper:
    //   val stencil = fun(A => map(sumNbh, slide(3, 1, pad(1, 1, clamp, A))))
    let sum_nbh = lam_named("nbh", Type::array(Type::f32(), 3), |nbh| {
        reduce(add_f32(), Expr::f32(0.0), nbh)
    });
    let stencil = lam_named("A", Type::array(Type::f32(), n), |a| {
        map(sum_nbh, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    });

    println!("== The high-level Lift expression ==");
    if let FunDecl::Lambda(l) = &stencil {
        println!("fun(A => {})\n", l.body);
    }
    println!(
        "type: {}\n",
        typecheck_fun(&stencil).expect("Listing 2 typechecks")
    );

    // Lower `map` onto global work-items and `reduce` to a sequential loop
    // (this is what the rewrite-based exploration does automatically; see
    // examples/autotune_stencil.rs).
    let variants = lift::lift_rewrite::enumerate_variants(&stencil);
    let lowered = &variants
        .iter()
        .find(|v| v.name == "global")
        .expect("global variant")
        .program;

    // Generate OpenCL C.
    let kernel = compile_kernel("jacobi3pt", lowered).expect("compiles");
    println!("== Generated OpenCL (pad/slide became pure index math) ==");
    println!("{}", kernel.to_source());

    // Execute on the virtual K20c and validate against a direct loop.
    let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let out = dev
        .run(&kernel, &[input.clone().into()], LaunchConfig::d1(n, 8))
        .expect("kernel runs");

    let expected: Vec<f32> = (0..n as i64)
        .map(|i| {
            let at = |j: i64| input[j.clamp(0, n as i64 - 1) as usize];
            at(i - 1) + at(i) + at(i + 1)
        })
        .collect();
    assert_eq!(out.output.as_f32(), expected.as_slice(), "bit-exact");

    println!("== Execution on the virtual {} ==", dev.profile().name);
    println!("output[0..6]  = {:?}", &out.output.as_f32()[..6]);
    println!("global loads  = {}", out.stats.global_loads);
    println!("transactions  = {}", out.stats.transactions());
    println!("modeled time  = {:.3} us", out.time_s * 1e6);
    println!("\nOK: generated kernel matches the reference bit-exactly.");
}
