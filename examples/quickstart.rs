//! Quickstart: the paper's Listing 2 — a 3-point Jacobi stencil — from
//! high-level expression to executed OpenCL kernel, through the staged
//! `Pipeline` session API; then the same flow on a 3D benchmark to show
//! the rank-generic search space with per-dimension tile tunables.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lift::lift_core::prelude::*;
use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::{KernelCache, LiftError, Pipeline};

fn main() -> Result<(), LiftError> {
    let n = 32usize;

    // Listing 2 of the paper:
    //   val stencil = fun(A => map(sumNbh, slide(3, 1, pad(1, 1, clamp, A))))
    let sum_nbh = lam_named("nbh", Type::array(Type::f32(), 3), |nbh| {
        reduce(add_f32(), Expr::f32(0.0), nbh)
    });
    let stencil = lam_named("A", Type::array(Type::f32(), n), |a| {
        map(sum_nbh, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    });

    // Stage 1: a type-checked program.
    let pipeline = Pipeline::new(stencil)?;
    println!("== The high-level Lift expression ==");
    if let FunDecl::Lambda(l) = pipeline.program() {
        println!("fun(A => {})\n", l.body);
    }
    println!("type: {}\n", pipeline.output_type());

    // Stage 2: rewrite-based exploration derives the implementation space
    // (`map` onto global work-items, ± tiling, ± local memory, …).
    let variants = pipeline.explore()?;
    println!("== Derived variants ==");
    println!("{:?}\n", variants.names());

    // Stage 3+4: fix the device, pick the plain global lowering with an
    // 8-wide work-group (`.tune(Budget::default())` would search instead).
    let device = VirtualDevice::new(DeviceProfile::k20c());
    let compiled = variants.on(&device).with_config("global", &[("lx", 8)])?;
    println!("== Generated OpenCL (pad/slide became pure index math) ==");
    println!("{}", compiled.source());

    // Execute on the virtual K20c and validate against a direct loop.
    let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
    let out = compiled.run(&[input.clone().into()])?;

    let expected: Vec<f32> = (0..n as i64)
        .map(|i| {
            let at = |j: i64| input[j.clamp(0, n as i64 - 1) as usize];
            at(i - 1) + at(i) + at(i + 1)
        })
        .collect();
    assert_eq!(out.output.as_f32(), expected.as_slice(), "bit-exact");

    println!(
        "== Execution on the virtual {} ==",
        compiled.device().profile().name
    );
    println!("output[0..6]  = {:?}", &out.output.as_f32()[..6]);
    println!("global loads  = {}", out.stats.global_loads);
    println!("transactions  = {}", out.stats.transactions());
    println!("modeled time  = {:.3} us", out.time_s * 1e6);
    println!(
        "kernel cache  = {:?} (a second identical session would hit, not compile)",
        KernelCache::global().stats()
    );
    println!("\nOK: generated kernel matches the reference bit-exactly.");

    // The same staged flow is rank-generic: a 3D benchmark derives the
    // full variant space — overlapped tiling and local-memory staging
    // included — with one *independent* tile-size tunable per dimension
    // (TS0 outermost). Here we pick asymmetric tiles explicitly; `.tune()`
    // would search each axis on its own.
    let variants = Pipeline::for_benchmark("Heat", &[8, 8, 8])?.explore()?;
    println!("\n== Rank-generic exploration: Heat 7pt (3D) ==");
    println!("variants: {:?}", variants.names());
    let tiled = variants
        .get("tiled-local")
        .expect("3D stencils derive local-memory tiling");
    let tunables: Vec<&str> = tiled.tunables.iter().map(|t| t.var()).collect();
    println!("per-dimension tile tunables: {tunables:?}");
    let compiled = variants.on(&device).with_config(
        "tiled-local",
        &[
            ("TS0", 4),
            ("TS1", 4),
            ("TS2", 10),
            ("lx", 4),
            ("ly", 2),
            ("lz", 2),
        ],
    )?;
    println!(
        "tiled-local 3D kernel: {} local buffer(s), launch {:?}",
        compiled.kernel().locals.len(),
        compiled.launch().global
    );
    Ok(())
}
