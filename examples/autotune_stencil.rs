//! Performance portability in action: the same high-level Jacobi2D program
//! is explored and auto-tuned on three different virtual GPUs, and the
//! winning implementation differs per device — the paper's central claim.
//!
//! ```text
//! cargo run --release --example autotune_stencil
//! ```

use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::{Budget, LiftError, Pipeline};

fn main() -> Result<(), LiftError> {
    let (name, sizes) = ("Jacobi2D5pt", [66usize, 66]);
    println!(
        "exploring + tuning {} at {}x{} on three devices\n",
        name, sizes[0], sizes[1]
    );

    for profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(profile);
        let outcome = Pipeline::for_benchmark(name, &sizes)?
            .explore()?
            .on(&dev)
            .tune_full(Budget::evaluations(12).with_seed(42))?;
        let report = &outcome.report;
        println!("[{}]", dev.profile().name);
        for v in &report.all {
            let marker = if v.name == report.winner.name {
                " <== winner"
            } else {
                ""
            };
            println!(
                "  {:<22}{:>9.4} GEl/s  cfg {:?}{}",
                v.name,
                v.gelems_per_s,
                v.config
                    .iter()
                    .map(|(k, x)| format!("{k}={x}"))
                    .collect::<Vec<_>>(),
                marker
            );
        }
        println!(
            "  -> best: {} ({})\n",
            outcome.winner.variant(),
            if outcome.winner.tiled() {
                "uses overlapped tiling"
            } else {
                "no tiling"
            }
        );
    }
    println!("Different devices pick different rewrite derivations — this is");
    println!("what the paper means by performance portability (§4, §7.2).");
    Ok(())
}
