//! Performance portability in action: the same high-level Jacobi2D program
//! is explored and auto-tuned on three different virtual GPUs, and the
//! winning implementation differs per device — the paper's central claim.
//!
//! ```text
//! cargo run --release --example autotune_stencil
//! ```

use lift::lift_harness::tune_lift;
use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::lift_stencils::by_name;

fn main() {
    let bench = by_name("Jacobi2D5pt");
    let sizes = [66usize, 66];
    println!(
        "exploring + tuning {} at {}x{} on three devices\n",
        bench.name, sizes[0], sizes[1]
    );

    for profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(profile);
        let result = tune_lift(&bench, &sizes, &dev, 12, 42);
        println!("[{}]", dev.profile().name);
        for v in &result.all {
            let marker = if v.name == result.winner.name {
                " <== winner"
            } else {
                ""
            };
            println!(
                "  {:<22}{:>9.4} GEl/s  cfg {:?}{}",
                v.name,
                v.gelems_per_s,
                v.config
                    .iter()
                    .map(|(k, x)| format!("{k}={x}"))
                    .collect::<Vec<_>>(),
                marker
            );
        }
        println!(
            "  -> best: {} ({})\n",
            result.winner.name,
            if result.winner.tiled {
                "uses overlapped tiling"
            } else {
                "no tiling"
            }
        );
    }
    println!("Different devices pick different rewrite derivations — this is");
    println!("what the paper means by performance portability (§4, §7.2).");
}
