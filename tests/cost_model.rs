//! Differential suite for the static cost model.
//!
//! The model's value rests on two properties, each pinned here:
//!
//! 1. **Exactness** — on kernels whose control flow and addressing never
//!    depend on buffer contents (every generated stencil qualifies), the
//!    statically predicted [`KernelStats`] equal the executor-measured
//!    ones **bit for bit**, and so does the modeled time. This is checked
//!    across every Table-1 benchmark × explored variant × device profile.
//! 2. **Conservatism** — where control flow *is* data-dependent the
//!    estimate flips `exact` off and only ever over-counts: predicted
//!    traffic and ALU work bound the measured ones from above.

use lift_codegen::clike::{
    AddressSpace, BinOp, CExpr, CStmt, CType, Kernel, KernelParam, VarRef, WorkItemFn,
};
use lift_driver::Pipeline;
use lift_oclsim::{
    BufferData, DeviceProfile, KernelStats, LaunchConfig, PlannedKernel, VirtualDevice,
};
use lift_rewrite::Tunable;
use lift_stencils::suite;

fn diff_sizes(dims: usize) -> Vec<usize> {
    match dims {
        1 => vec![128],
        2 => vec![48, 40],
        _ => vec![12, 16, 20],
    }
}

fn variant_config(tunables: &[Tunable], dims: usize) -> Option<Vec<(String, i64)>> {
    let mut cfg: Vec<(String, i64)> = Vec::new();
    for t in tunables {
        let cands = t.candidates(64);
        let v = match t {
            Tunable::TileSize { nbh_size, .. } => cands.into_iter().find(|u| *u >= nbh_size + 3)?,
            Tunable::CoarsenFactor { .. } => cands.into_iter().next()?,
        };
        cfg.push((t.var().to_string(), v));
    }
    cfg.push(("lx".into(), 8));
    if dims >= 2 {
        cfg.push(("ly".into(), 4));
    }
    if dims >= 3 {
        cfg.push(("lz".into(), 2));
    }
    Some(cfg)
}

/// Every Table-1 benchmark × variant × device: the static estimate is
/// exact and every stats counter — and therefore the modeled time —
/// matches the measured run bit for bit.
#[test]
fn estimates_are_bit_exact_on_every_benchmark_variant_device() {
    let devices: Vec<VirtualDevice> = DeviceProfile::all()
        .into_iter()
        .map(VirtualDevice::new)
        .collect();
    let mut compared = 0usize;
    for bench in suite() {
        let sizes = diff_sizes(bench.dims);
        let variants = Pipeline::from_benchmark(&bench, &sizes)
            .expect("pipeline")
            .explore()
            .expect("explores");
        let names: Vec<String> = variants.names().iter().map(|s| s.to_string()).collect();
        let inputs: Vec<BufferData> = bench
            .gen_inputs(&sizes, 7)
            .into_iter()
            .map(BufferData::F32)
            .collect();
        for dev in &devices {
            for name in &names {
                let variant = variants.get(name).expect("listed variant");
                let Some(cfg) = variant_config(&variant.tunables, variant.dims) else {
                    continue;
                };
                let cfg_refs: Vec<(&str, i64)> =
                    cfg.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let compiled = match variants.clone().on(dev).with_config(name, &cfg_refs) {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let label = format!("{}/{name} on {}", bench.name, dev.profile().name);
                let measured = match dev.run(compiled.kernel(), &inputs, compiled.launch()) {
                    Ok(m) => m,
                    // A faulting cell is out of scope here (the engines'
                    // differential suite covers fault agreement).
                    Err(_) => continue,
                };
                let planned = PlannedKernel::from_arc(compiled.kernel().clone());
                let est = planned
                    .estimate(compiled.launch(), dev.profile())
                    .unwrap_or_else(|e| panic!("estimate refused for {label}: {e}"));
                assert!(est.exact, "stencil kernel not statically exact: {label}");
                assert_eq!(
                    est.stats, measured.stats,
                    "static stats diverge from measured for {label}"
                );
                assert_eq!(
                    est.time(dev.profile()).to_bits(),
                    measured.time_s.to_bits(),
                    "modeled times diverge for {label}: {} vs {}",
                    est.time(dev.profile()),
                    measured.time_s
                );
                // Memoisation returns the identical Arc.
                let again = planned
                    .estimate(compiled.launch(), dev.profile())
                    .expect("cached estimate");
                assert!(
                    std::sync::Arc::ptr_eq(&est, &again),
                    "cache miss for {label}"
                );
                compared += 1;
            }
        }
    }
    assert!(
        compared >= 100,
        "expected a broad comparison matrix, only {compared} cells ran"
    );
}

fn buf(name: &str, len: usize, is_output: bool) -> KernelParam {
    KernelParam {
        var: VarRef::fresh(name),
        elem: CType::Float,
        len,
        is_output,
    }
}

/// A kernel whose branch condition depends on buffer *contents*: the
/// model cannot know which arm runs, so it must flip `exact` off and
/// charge an upper bound on every counter the branch can influence.
#[test]
fn data_dependent_branches_only_overestimate() {
    let a = buf("A", 64, false);
    let out = buf("out", 64, true);
    let gid = VarRef::fresh("gid");
    let kernel = Kernel {
        name: "data_branch".into(),
        body: vec![
            CStmt::DeclScalar {
                var: gid.clone(),
                ty: CType::Int,
                init: Some(CExpr::WorkItem(WorkItemFn::GlobalId, 0)),
            },
            CStmt::If {
                // `A[gid] < A[0]` is unknowable without data.
                cond: CExpr::Bin(
                    BinOp::Lt,
                    Box::new(CExpr::Load {
                        buf: a.var.clone(),
                        space: AddressSpace::Global,
                        idx: Box::new(CExpr::Var(gid.clone())),
                    }),
                    Box::new(CExpr::Load {
                        buf: a.var.clone(),
                        space: AddressSpace::Global,
                        idx: Box::new(CExpr::Int(0)),
                    }),
                ),
                then_: vec![CStmt::Store {
                    buf: out.var.clone(),
                    space: AddressSpace::Global,
                    idx: CExpr::Var(gid.clone()),
                    value: CExpr::Bin(
                        BinOp::Add,
                        Box::new(CExpr::Load {
                            buf: a.var.clone(),
                            space: AddressSpace::Global,
                            idx: Box::new(CExpr::Var(gid.clone())),
                        }),
                        Box::new(CExpr::Float(1.0)),
                    ),
                }],
                else_: vec![CStmt::Store {
                    buf: out.var.clone(),
                    space: AddressSpace::Global,
                    idx: CExpr::Var(gid.clone()),
                    value: CExpr::Float(0.0),
                }],
            },
        ],
        params: vec![a, out],
        locals: vec![],
        user_funs: vec![],
    };
    let cfg = LaunchConfig {
        global: [64, 1, 1],
        local: [16, 1, 1],
    };
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let inputs = vec![BufferData::F32(
        (0..64).map(|i| (i % 7) as f32 - 3.0).collect(),
    )];
    let measured = dev.run(&kernel, &inputs, cfg).expect("runs");
    let planned = PlannedKernel::new(kernel);
    let est = planned.estimate(cfg, dev.profile()).expect("estimates");
    assert!(!est.exact, "a data-dependent branch cannot be exact");
    let over = |what: &str, e: u64, m: u64| {
        assert!(e >= m, "{what} underestimated: static {e} < measured {m}");
    };
    let (e, m): (&KernelStats, &KernelStats) = (&est.stats, &measured.stats);
    over("global_loads", e.global_loads, m.global_loads);
    over("global_stores", e.global_stores, m.global_stores);
    over(
        "load_transactions",
        e.load_transactions,
        m.load_transactions,
    );
    over(
        "store_transactions",
        e.store_transactions,
        m.store_transactions,
    );
    over("unique_segments", e.unique_segments, m.unique_segments);
    over("local_accesses", e.local_accesses, m.local_accesses);
    over("alu_ops", e.alu_ops, m.alu_ops);
    over("barriers", e.barriers, m.barriers);
    assert!(
        est.time(dev.profile()) >= measured.time_s,
        "modeled time underestimated"
    );
    // The launch-shape counters are not control-flow dependent and stay
    // exact even on the inexact path.
    assert_eq!(e.work_items, m.work_items);
    assert_eq!(e.work_groups, m.work_groups);
    assert_eq!(e.wg_size, m.wg_size);
}

/// A loop whose bound comes out of a buffer defeats static analysis: the
/// estimate must refuse (`SimError::Estimate`), not guess or hang.
#[test]
fn data_dependent_loop_bounds_refuse_cleanly() {
    let a = buf("A", 8, false);
    let out = buf("out", 8, true);
    let i = VarRef::fresh("i");
    let n = VarRef::fresh("n");
    let kernel = Kernel {
        name: "data_loop".into(),
        body: vec![
            CStmt::DeclScalar {
                var: n.clone(),
                ty: CType::Int,
                init: Some(CExpr::Cast(
                    CType::Int,
                    Box::new(CExpr::Load {
                        buf: a.var.clone(),
                        space: AddressSpace::Global,
                        idx: Box::new(CExpr::Int(0)),
                    }),
                )),
            },
            CStmt::For {
                var: i.clone(),
                init: CExpr::Int(0),
                bound: CExpr::Var(n.clone()),
                step: CExpr::Int(1),
                body: vec![CStmt::Store {
                    buf: out.var.clone(),
                    space: AddressSpace::Global,
                    idx: CExpr::Int(0),
                    value: CExpr::Float(1.0),
                }],
            },
        ],
        params: vec![a, out],
        locals: vec![],
        user_funs: vec![],
    };
    let cfg = LaunchConfig {
        global: [8, 1, 1],
        local: [8, 1, 1],
    };
    let planned = PlannedKernel::new(kernel);
    let err = planned
        .estimate(cfg, &DeviceProfile::k20c())
        .expect_err("must refuse");
    assert!(
        matches!(err, lift_oclsim::SimError::Estimate(_)),
        "wrong fault: {err:?}"
    );
    assert!(
        err.to_string().contains("cost estimate unavailable"),
        "message: {err}"
    );
}
