//! Integration: the complete pipeline — high-level program → lowering →
//! OpenCL code generation → execution on the virtual device — validated
//! against the golden reference for **every** Table-1 benchmark.

use lift::lift_codegen::compile_kernel;
use lift::lift_oclsim::{BufferData, DeviceProfile, LaunchConfig, VirtualDevice};
use lift::lift_rewrite::enumerate_variants;
use lift::lift_stencils::{suite, Benchmark};

fn tiny(sizes: &[usize]) -> Vec<usize> {
    sizes.iter().map(|s| (*s).clamp(6, 12)).collect()
}

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-4 * y.abs().max(1.0))
}

fn launch_for(bench: &Benchmark, sizes: &[usize]) -> LaunchConfig {
    match bench.dims {
        1 => LaunchConfig::d1(sizes[0].next_power_of_two(), 4),
        2 => LaunchConfig::d2(
            sizes[1].next_power_of_two(),
            sizes[0].next_power_of_two(),
            4,
            4,
        ),
        _ => LaunchConfig::d3(
            [
                sizes[2].next_power_of_two(),
                sizes[1].next_power_of_two(),
                sizes[0].next_power_of_two(),
            ],
            [4, 4, 2],
        ),
    }
}

#[test]
fn every_benchmark_compiles_and_runs_bit_close_on_all_devices() {
    for bench in suite() {
        let sizes = tiny(bench.small);
        let prog = bench.program(&sizes);
        let variants = enumerate_variants(&prog);
        let global = variants
            .iter()
            .find(|v| v.name == "global")
            .unwrap_or_else(|| panic!("{}: no global variant", bench.name));
        let kernel = compile_kernel(&bench.name.to_lowercase(), &global.program)
            .unwrap_or_else(|e| panic!("{}: codegen failed: {e}", bench.name));

        let raw_inputs = bench.gen_inputs(&sizes, 11);
        let golden = bench.golden(&raw_inputs, &sizes);
        let inputs: Vec<BufferData> = raw_inputs.into_iter().map(BufferData::F32).collect();
        let launch = launch_for(&bench, &sizes);

        for profile in DeviceProfile::all() {
            let dev = VirtualDevice::new(profile);
            let out = dev
                .run(&kernel, &inputs, launch)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name, dev.profile().name));
            assert!(
                close(out.output.as_f32(), &golden),
                "{} on {}: wrong output",
                bench.name,
                dev.profile().name
            );
            assert!(out.time_s > 0.0);
        }
    }
}

#[test]
fn unrolled_variants_match_golden_too() {
    for bench in suite() {
        let sizes = tiny(bench.small);
        let prog = bench.program(&sizes);
        let variants = enumerate_variants(&prog);
        let Some(v) = variants.iter().find(|v| v.name == "global-unroll") else {
            continue;
        };
        let kernel = match compile_kernel("k", &v.program) {
            Ok(k) => k,
            Err(e) => panic!("{}: unrolled codegen failed: {e}", bench.name),
        };
        let raw_inputs = bench.gen_inputs(&sizes, 5);
        let golden = bench.golden(&raw_inputs, &sizes);
        let inputs: Vec<BufferData> = raw_inputs.into_iter().map(BufferData::F32).collect();
        let dev = VirtualDevice::new(DeviceProfile::hd7970());
        let out = dev
            .run(&kernel, &inputs, launch_for(&bench, &sizes))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            close(out.output.as_f32(), &golden),
            "{}: unrolled variant diverges",
            bench.name
        );
    }
}

#[test]
fn generated_sources_embed_user_functions() {
    for bench in suite() {
        let sizes = tiny(bench.small);
        let prog = bench.program(&sizes);
        let variants = enumerate_variants(&prog);
        let global = variants.iter().find(|v| v.name == "global").expect("exists");
        let kernel = compile_kernel("k", &global.program).expect("compiles");
        let src = kernel.to_source();
        assert!(src.contains("__kernel void k("), "{}", bench.name);
        assert!(
            !kernel.user_funs.is_empty(),
            "{}: no user functions collected",
            bench.name
        );
        for uf in &kernel.user_funs {
            assert!(
                src.contains(uf.name()),
                "{}: source lacks definition of `{}`",
                bench.name,
                uf.name()
            );
        }
    }
}
