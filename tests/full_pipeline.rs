//! Integration: the complete pipeline — high-level program → lowering →
//! OpenCL code generation → execution on the virtual device — validated
//! against the golden reference for **every** Table-1 benchmark × all
//! three device profiles, exclusively through the staged `Pipeline` API.

use lift::lift_oclsim::{BufferData, DeviceProfile, VirtualDevice};
use lift::lift_stencils::suite;
use lift::Pipeline;

fn tiny(sizes: &[usize]) -> Vec<usize> {
    sizes.iter().map(|s| (*s).clamp(6, 12)).collect()
}

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-4 * y.abs().max(1.0))
}

/// Launch parameters matching the old hand-rolled launches: small
/// work-groups so the tiny grids still fill several groups.
fn launch_params(dims: usize) -> Vec<(&'static str, i64)> {
    match dims {
        1 => vec![("lx", 4)],
        2 => vec![("lx", 4), ("ly", 4)],
        _ => vec![("lx", 4), ("ly", 4), ("lz", 2)],
    }
}

#[test]
fn every_benchmark_compiles_and_runs_bit_close_on_all_devices() {
    for bench in suite() {
        let sizes = tiny(bench.small);
        let raw_inputs = bench.gen_inputs(&sizes, 11);
        let golden = bench.golden(&raw_inputs, &sizes);
        let inputs: Vec<BufferData> = raw_inputs.into_iter().map(BufferData::F32).collect();

        for profile in DeviceProfile::all() {
            let dev = VirtualDevice::new(profile);
            let compiled = Pipeline::from_benchmark(&bench, &sizes)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bench.name))
                .explore()
                .unwrap_or_else(|e| panic!("{}: explore failed: {e}", bench.name))
                .on(&dev)
                .with_config("global", &launch_params(bench.dims))
                .unwrap_or_else(|e| panic!("{}: codegen failed: {e}", bench.name));
            let out = compiled
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name, dev.profile().name));
            assert!(
                close(out.output.as_f32(), &golden),
                "{} on {}: wrong output",
                bench.name,
                dev.profile().name
            );
            assert!(out.time_s > 0.0);
        }
    }
}

#[test]
fn unrolled_variants_match_golden_too() {
    let dev = VirtualDevice::new(DeviceProfile::hd7970());
    for bench in suite() {
        let sizes = tiny(bench.small);
        let variants = Pipeline::from_benchmark(&bench, &sizes)
            .expect("pipeline")
            .explore()
            .expect("explores");
        if variants.get("global-unroll").is_none() {
            continue;
        }
        let compiled = variants
            .on(&dev)
            .with_config("global-unroll", &launch_params(bench.dims))
            .unwrap_or_else(|e| panic!("{}: unrolled codegen failed: {e}", bench.name));
        let raw_inputs = bench.gen_inputs(&sizes, 5);
        let golden = bench.golden(&raw_inputs, &sizes);
        let inputs: Vec<BufferData> = raw_inputs.into_iter().map(BufferData::F32).collect();
        let out = compiled
            .run(&inputs)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            close(out.output.as_f32(), &golden),
            "{}: unrolled variant diverges",
            bench.name
        );
    }
}

#[test]
fn generated_sources_embed_user_functions() {
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    for bench in suite() {
        let sizes = tiny(bench.small);
        let compiled = Pipeline::from_benchmark(&bench, &sizes)
            .expect("pipeline")
            .explore()
            .expect("explores")
            .on(&dev)
            .with_config("global", &launch_params(bench.dims))
            .expect("compiles");
        let src = compiled.source();
        assert!(src.contains("__kernel void "), "{}", bench.name);
        assert!(
            !compiled.kernel().user_funs.is_empty(),
            "{}: no user functions collected",
            bench.name
        );
        for uf in &compiled.kernel().user_funs {
            assert!(
                src.contains(uf.name()),
                "{}: source lacks definition of `{}`",
                bench.name,
                uf.name()
            );
        }
    }
}
