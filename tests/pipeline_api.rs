//! The staged session API end-to-end: for every Table-1 benchmark × all
//! three device profiles, `Pipeline → CompiledStencil → run` matches the
//! golden reference, a second identical session is bit-identical, and the
//! kernel cache serves the second compilation without recompiling.

use std::sync::Arc;

use lift::lift_oclsim::{BufferData, DeviceProfile, VirtualDevice};
use lift::{Budget, KernelCache, LiftError, Pipeline};

fn tiny(sizes: &[usize]) -> Vec<usize> {
    sizes.iter().map(|s| (*s).clamp(6, 12)).collect()
}

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-4 * y.abs().max(1.0))
}

fn launch_params(dims: usize) -> Vec<(&'static str, i64)> {
    match dims {
        1 => vec![("lx", 4)],
        2 => vec![("lx", 4), ("ly", 4)],
        _ => vec![("lx", 4), ("ly", 4), ("lz", 2)],
    }
}

/// The full round trip on every (benchmark, device) cell, each cell run as
/// *two* independent sessions sharing one cache: outputs must match the
/// golden reference, the sessions must agree bit-exactly, and the second
/// session must perform **zero** recompilations.
#[test]
fn round_trip_every_benchmark_on_every_device_with_cache_reuse() {
    let cache = Arc::new(KernelCache::new());
    for bench in lift::lift_stencils::suite() {
        let sizes = tiny(bench.small);
        let raw_inputs = bench.gen_inputs(&sizes, 23);
        let golden = bench.golden(&raw_inputs, &sizes);
        let inputs: Vec<BufferData> = raw_inputs.into_iter().map(BufferData::F32).collect();
        let params = launch_params(bench.dims);

        for profile in DeviceProfile::all() {
            let dev = VirtualDevice::new(profile);
            let session = |cache: Arc<KernelCache>| {
                Pipeline::from_benchmark(&bench, &sizes)?
                    .explore()?
                    .on(&dev)
                    .with_cache(cache)
                    .with_config("global", &params)
            };

            let first = session(cache.clone()).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            let compiles_after_first = cache.stats().compiles;
            let out1 = first
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name, dev.profile().name));
            assert!(
                close(out1.output.as_f32(), &golden),
                "{} on {}: output diverges from golden reference",
                bench.name,
                dev.profile().name
            );

            // Session two: same (benchmark, device, config) — the cache
            // must serve the kernel without a single new compilation.
            let second = session(cache.clone()).expect("second session");
            assert_eq!(
                cache.stats().compiles,
                compiles_after_first,
                "{} on {}: second session recompiled",
                bench.name,
                dev.profile().name
            );
            assert!(
                Arc::ptr_eq(first.kernel(), second.kernel()),
                "{} on {}: cache returned a different kernel object",
                bench.name,
                dev.profile().name
            );
            let out2 = second.run(&inputs).expect("second run");
            assert_eq!(
                out1.output.as_f32(),
                out2.output.as_f32(),
                "{} on {}: sessions disagree bit-exactly",
                bench.name,
                dev.profile().name
            );
        }
    }
    let stats = cache.stats();
    assert!(stats.hits > 0 && stats.compiles > 0, "sanity: {stats:?}");
}

/// The compile counter in detail on one benchmark: exactly one compile for
/// two sessions, and a *different* configuration compiles anew.
#[test]
fn second_compile_is_a_cache_hit_and_different_config_is_not() {
    let cache = Arc::new(KernelCache::new());
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let compile = |variant: &str, params: &[(&str, i64)]| {
        Pipeline::for_benchmark("Jacobi2D5pt", &[10, 10])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .with_cache(cache.clone())
            .with_config(variant, params)
            .unwrap()
    };

    compile("global", &[("lx", 4), ("ly", 4)]);
    assert_eq!(cache.stats().compiles, 1);
    assert_eq!(cache.stats().hits, 0);

    // Same kernel under a different *launch* shape: launch parameters are
    // not part of generated code, so this is still a hit.
    compile("global", &[("lx", 8), ("ly", 2)]);
    assert_eq!(cache.stats().compiles, 1, "launch-only change recompiled");
    assert_eq!(cache.stats().hits, 1);

    // A different variant is a genuinely different kernel.
    compile("global-unroll", &[("lx", 4), ("ly", 4)]);
    assert_eq!(cache.stats().compiles, 2);

    // A different tunable value is a genuinely different kernel.
    compile("tiled", &[("TS0", 4), ("TS1", 4), ("lx", 4), ("ly", 4)]);
    compile("tiled", &[("TS0", 12), ("TS1", 4), ("lx", 4), ("ly", 4)]);
    assert_eq!(cache.stats().compiles, 4);
    assert_eq!(cache.len(), 4);
}

/// Tuning then re-running the winner's exact configuration in a fresh
/// session stays cached end-to-end.
#[test]
fn tuned_winner_is_reusable_from_the_cache() {
    let cache = Arc::new(KernelCache::new());
    let dev = VirtualDevice::new(DeviceProfile::hd7970());
    let outcome = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
        .unwrap()
        .explore()
        .unwrap()
        .on(&dev)
        .with_cache(cache.clone())
        .tune_full(Budget::evaluations(6).with_seed(5))
        .expect("tunes");
    let compiles_after_tune = cache.stats().compiles;

    // Rebuild the winner from its reported configuration in a new session.
    let cfg: Vec<(&str, i64)> = outcome
        .report
        .winner
        .config
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    let rebuilt = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
        .unwrap()
        .explore()
        .unwrap()
        .on(&dev)
        .with_cache(cache.clone())
        .with_config(&outcome.report.winner.name, &cfg)
        .expect("rebuilds");
    assert_eq!(
        cache.stats().compiles,
        compiles_after_tune,
        "rebuilding the tuned winner must not recompile"
    );
    assert!(Arc::ptr_eq(outcome.winner.kernel(), rebuilt.kernel()));

    // And it still validates.
    let bench = lift::lift_stencils::by_name("Jacobi2D5pt");
    let raw = bench.gen_inputs(&[18, 18], 9);
    let golden = bench.golden(&raw, &[18, 18]);
    let inputs: Vec<BufferData> = raw.into_iter().map(BufferData::F32).collect();
    let out = rebuilt.run(&inputs).expect("runs");
    assert!(close(out.output.as_f32(), &golden));
}

/// Stage errors are values, not panics, and chain to their origin.
#[test]
fn errors_carry_their_source() {
    let err = Pipeline::for_benchmark("NoSuchBenchmark", &[8]).unwrap_err();
    assert!(matches!(err, LiftError::UnknownBenchmark(_)));

    use lift::lift_core::prelude::*;
    let ill_typed = lam(Type::f32(), |x| map(add_f32(), x));
    let err = Pipeline::new(ill_typed).unwrap_err();
    assert!(matches!(err, LiftError::Type(_)));
    let source = std::error::Error::source(&err).expect("chains to TypeError");
    assert!(source.is::<lift::lift_core::typecheck::TypeError>());
}
