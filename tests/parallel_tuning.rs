//! The parallel-tuning contract: any thread count reproduces the
//! sequential search bit-for-bit, tiny devices still tune (profile-derived
//! work-group spaces), and a fruitless search explains itself.

use std::sync::Arc;

use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::{KernelCache, LiftError, Pipeline, TuneOptions, TunedVariant};

fn tuned_fingerprint(v: &TunedVariant) -> (String, String, Vec<(String, i64)>, usize) {
    (
        v.name.clone(),
        // Scores must be *bit*-identical, not approximately equal.
        format!("{:x}", v.time_s.to_bits()),
        v.config.clone(),
        v.evaluations,
    )
}

/// The tentpole guarantee: `threads: 1` and `threads: N` produce identical
/// winners, configurations, scores and evaluation counts for the same
/// seed — across every variant, not just the winner.
#[test]
fn same_seed_is_bit_identical_across_thread_counts() {
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let run = |threads: usize| {
        let report = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .expect("benchmark exists")
            .explore()
            .expect("explores")
            .on(&dev)
            .with_cache(Arc::new(KernelCache::new()))
            .tune_full(
                TuneOptions::evaluations(8)
                    .with_seed(5)
                    .with_threads(threads),
            )
            .expect("tunes")
            .report;
        (
            tuned_fingerprint(&report.winner),
            report.all.iter().map(tuned_fingerprint).collect::<Vec<_>>(),
        )
    };
    let sequential = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), sequential, "threads={threads} diverged");
    }
}

/// A device whose work-group limit sits below the old hard-coded 2D lower
/// bounds (8×4): tuning used to reject every configuration and report
/// `NoValidConfiguration`; the per-dimension pow2 bounds now derive from
/// the profile.
#[test]
fn tiny_max_wg_device_tunes_2d_and_3d() {
    let tiny = DeviceProfile {
        name: "Tiny-WG16",
        max_wg_size: 16,
        ..DeviceProfile::k20c()
    };
    let dev = VirtualDevice::new(tiny);
    for (bench, sizes) in [("Jacobi2D5pt", vec![18usize, 18]), ("Heat", vec![8, 8, 8])] {
        let winner = Pipeline::for_benchmark(bench, &sizes)
            .expect("benchmark exists")
            .explore()
            .expect("explores")
            .on(&dev)
            .with_cache(Arc::new(KernelCache::new()))
            .tune(TuneOptions::evaluations(8).with_seed(1))
            .unwrap_or_else(|e| panic!("{bench} must tune on a 16-wide device: {e}"));
        let (_, local) = (winner.launch().global, winner.launch().local);
        assert!(
            local.iter().product::<usize>() <= 16,
            "{bench} launched an oversized group {local:?}"
        );
    }
}

/// Thread counts must also not change results on a non-default profile
/// (the derived local space is part of the deterministic proposal stream).
#[test]
fn tiny_device_is_deterministic_across_threads_too() {
    let tiny = DeviceProfile {
        name: "Tiny-WG16",
        max_wg_size: 16,
        ..DeviceProfile::hd7970()
    };
    let dev = VirtualDevice::new(tiny);
    let run = |threads: usize| {
        Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .with_cache(Arc::new(KernelCache::new()))
            .tune_full(
                TuneOptions::evaluations(6)
                    .with_seed(11)
                    .with_threads(threads),
            )
            .expect("tunes")
            .report
            .all
            .iter()
            .map(tuned_fingerprint)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4));
}

/// Configurations the static verifier rejects are *pruned*, not silently
/// swallowed: a device with barely any local memory forces the tiled
/// variants' candidates through verify-rejection, and the per-variant
/// pruned counter records every one.
#[test]
fn statically_invalid_configs_are_counted_as_pruned() {
    let scarce = DeviceProfile {
        name: "Scarce-LocalMem",
        lmem_bytes_per_cu: 256,
        ..DeviceProfile::k20c()
    };
    let dev = VirtualDevice::new(scarce);
    let report = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
        .expect("benchmark exists")
        .explore()
        .expect("explores")
        .on(&dev)
        .with_cache(Arc::new(KernelCache::new()))
        .tune_full(TuneOptions::evaluations(8).with_seed(5))
        .expect("the untiled variants still tune")
        .report;
    let pruned: usize = report.all.iter().map(|v| v.pruned_verify).sum();
    assert!(
        pruned > 0,
        "256 bytes of local memory must verify-prune tiled candidates; \
         variants: {:?}",
        report
            .all
            .iter()
            .map(|v| (v.name.as_str(), v.pruned_verify))
            .collect::<Vec<_>>()
    );
}

/// When nothing tunes, the error must carry the cause instead of a bare
/// "no valid configuration": here every PPCG candidate needs local memory
/// the device does not have, and the source chain says so.
#[test]
fn no_valid_configuration_explains_itself() {
    let no_lmem = DeviceProfile {
        name: "No-LocalMem",
        lmem_bytes_per_cu: 0,
        ..DeviceProfile::k20c()
    };
    let dev = VirtualDevice::new(no_lmem);
    let bench = lift::lift_stencils::by_name("Jacobi2D5pt");
    let err = lift::lift_driver::ppcg_baseline(
        &bench,
        &[18, 18],
        &dev,
        TuneOptions::evaluations(6).with_seed(1),
    )
    .expect_err("local staging cannot fit in zero local memory");
    let LiftError::NoValidConfiguration { ref failures, .. } = err else {
        panic!("expected NoValidConfiguration, got {err}");
    };
    assert!(
        !failures.is_empty(),
        "the first failure per variant must be recorded"
    );
    assert!(
        matches!(*failures[0].1, LiftError::Verify { .. }),
        "the cause is the static verifier's local-memory rejection: {}",
        failures[0].1
    );
    let source = std::error::Error::source(&err).expect("source chain reaches the cause");
    assert!(
        source.to_string().contains("local memory"),
        "diagnosis survives into the chain: {source}"
    );
    assert!(
        err.to_string().contains("local memory"),
        "diagnosis also appears in the display detail: {err}"
    );
}

/// The strip-mined-z launch special case follows the variant's explicit
/// flag, not its name: the PPCG 3D lowering declares it, Lift variants
/// never do.
#[test]
fn strip_mining_is_declared_not_name_matched() {
    let bench = lift::lift_stencils::by_name("Heat");
    let prog = bench.program(&[8, 8, 8]);
    let k = lift::lift_ppcg::compile(&prog).expect("ppcg compiles 3D");
    assert!(
        k.strip_mined_z,
        "the 3D z-strip mapping must declare itself"
    );
    for v in lift::lift_rewrite::strategy::enumerate_variants(&prog) {
        assert!(
            !v.strip_mined_z,
            "Lift variant `{}` does not strip-mine z",
            v.name
        );
    }
}
