//! Integration: performance portability across the three device profiles —
//! the same program runs everywhere, and device traits steer the tuner to
//! different implementations (§7.2 of the paper).

use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::{BenchResult, Budget, Pipeline};

fn tune(name: &str, sizes: &[usize], dev: &VirtualDevice, evals: usize, seed: u64) -> BenchResult {
    Pipeline::for_benchmark(name, sizes)
        .expect("benchmark exists")
        .explore()
        .expect("explores")
        .on(dev)
        .tune_full(Budget::evaluations(evals).with_seed(seed))
        .expect("tunes")
        .report
}

/// A 2D stencil with a tiling-friendly size: each device must find a valid
/// winner, and the winner's throughput ordering must follow the hardware
/// (K20c and HD 7970 far above Mali).
#[test]
fn winners_run_everywhere_and_scale_with_hardware() {
    let sizes = [34usize, 34]; // padded 36: several valid tile sizes
    let mut rates = Vec::new();
    for profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(profile);
        let r = tune("Jacobi2D5pt", &sizes, &dev, 6, 3);
        assert!(r.winner.gelems_per_s > 0.0);
        rates.push((r.device.clone(), r.winner.gelems_per_s));
    }
    let nv = rates[0].1;
    let arm = rates[2].1;
    assert!(
        nv > arm * 3.0,
        "expected the K20c profile to be much faster than Mali: {rates:?}"
    );
}

/// Local-memory staging must never win on the Mali profile: the device has
/// no hardware local memory, so `toLocal` is pure overhead there.
#[test]
fn mali_never_prefers_local_memory() {
    let sizes = [34usize, 34];
    let dev = VirtualDevice::new(DeviceProfile::mali_t628());
    let r = tune("Jacobi2D5pt", &sizes, &dev, 8, 7);
    assert!(
        !r.winner.local_mem,
        "Mali winner must not stage through local memory, got {}",
        r.winner.name
    );
    // And the local-memory variant, where explored, must not beat the best
    // non-local variant.
    let best_local = r
        .all
        .iter()
        .filter(|v| v.local_mem)
        .map(|v| v.gelems_per_s)
        .fold(0.0f64, f64::max);
    let best_plain = r
        .all
        .iter()
        .filter(|v| !v.local_mem)
        .map(|v| v.gelems_per_s)
        .fold(0.0f64, f64::max);
    assert!(best_plain >= best_local);
}

/// The same launch on a bigger grid must never get *slower* in modeled
/// time per element on the same device (sanity of the performance model).
#[test]
fn model_time_scales_with_work() {
    use lift::lift_oclsim::BufferData;

    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let mut times = Vec::new();
    for n in [16usize, 32, 64] {
        let bench = lift::lift_stencils::by_name("Jacobi2D5pt");
        let sizes = [n, n];
        let compiled = Pipeline::from_benchmark(&bench, &sizes)
            .expect("pipeline")
            .explore()
            .expect("explores")
            .on(&dev)
            .with_config("global", &[("lx", 8), ("ly", 8)])
            .expect("compiles");
        let inputs: Vec<BufferData> = bench
            .gen_inputs(&sizes, 1)
            .into_iter()
            .map(BufferData::F32)
            .collect();
        let out = compiled.run(&inputs).expect("runs");
        times.push(out.time_s);
    }
    assert!(
        times[0] <= times[1] && times[1] <= times[2],
        "modeled time must grow with grid size: {times:?}"
    );
}

/// Barrier divergence is detected, not silently mis-executed: a kernel with
/// a barrier under a thread-dependent branch must fail.
#[test]
fn divergent_barrier_is_rejected() {
    use lift::lift_codegen::clike::*;
    use lift::lift_oclsim::{LaunchConfig, SimError};

    let out_v = VarRef::fresh("outbuf");
    let kernel = Kernel {
        name: "divergent".into(),
        params: vec![KernelParam {
            var: out_v.clone(),
            elem: CType::Float,
            len: 8,
            is_output: true,
        }],
        locals: vec![],
        body: vec![CStmt::If {
            cond: CExpr::Bin(
                BinOp::Lt,
                Box::new(CExpr::WorkItem(WorkItemFn::LocalId, 0)),
                Box::new(CExpr::Int(2)),
            ),
            then_: vec![CStmt::Barrier {
                local: true,
                global: false,
            }],
            else_: vec![],
        }],
        user_funs: vec![],
    };
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let err = dev
        .run(&kernel, &[], LaunchConfig::d1(8, 4))
        .expect_err("must fail");
    assert!(matches!(err, SimError::BarrierDivergence));
}
