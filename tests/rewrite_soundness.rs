//! Property tests: the paper's rewrite rules are semantics-preserving for
//! *random* shapes, sizes and inputs — checked against both the reference
//! evaluator and the full pipeline (codegen + simulator).
//!
//! Cases come from a deterministic SplitMix64 stream, so every run checks
//! the same fixed set and is exactly reproducible.

use lift::lift_arith::ArithExpr;
use lift::lift_core::eval::{eval_fun, DataValue};
use lift::lift_core::prelude::*;
use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::lift_rewrite::rules::tile_nd;
use lift::Pipeline;

struct Rng(lift::lift_tuner::SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(lift::lift_tuner::SplitMix64::new(seed))
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(n as usize) as u64
    }
}

fn jacobi1d_prog(n: usize) -> FunDecl {
    lam_named("A", Type::array(Type::f32(), n), |a| {
        let sum = lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        });
        map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    })
}

fn sum2d_prog(n: usize) -> FunDecl {
    lam_named("A", Type::array_2d(Type::f32(), n, n), |a| {
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        lift::lift_core::ndim::map2(
            f,
            lift::lift_core::ndim::slide2(
                3,
                1,
                lift::lift_core::ndim::pad2(1, 1, Boundary::Clamp, a),
            ),
        )
    })
}

/// Valid (n, tile) pairs for a padded length `n + 2` with nbh (3, 1):
/// `v = u − 2` must divide `n + 2 − u`.
fn valid_tiles(padded: usize) -> Vec<usize> {
    (3..=padded)
        .filter(|u| {
            let v = u - 2;
            v > 0 && (padded - u).is_multiple_of(v)
        })
        .collect()
}

/// 1D overlapped tiling preserves evaluator semantics for random sizes,
/// tile sizes and inputs.
#[test]
fn tile_1d_sound() {
    let mut rng = Rng::new(0x71);
    for _ in 0..12 {
        let n = 6 + rng.below(34) as usize;
        let prog = jacobi1d_prog(n);
        let FunDecl::Lambda(l) = &prog else {
            unreachable!()
        };
        let tiles = valid_tiles(n + 2);
        assert!(!tiles.is_empty(), "n + 2 itself is always a valid tile");
        let u = tiles[rng.below(1000) as usize % tiles.len()];
        let Some(tiled_body) = tile_nd(&l.body, &[ArithExpr::from(u)], false) else {
            continue;
        };
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);

        let values: Vec<f32> = (0..n)
            .map(|_| (rng.below(200_000) as f32 / 1000.0) - 100.0)
            .collect();
        let input = DataValue::from_f32s(values.iter().copied());
        let lhs = eval_fun(&prog, std::slice::from_ref(&input)).expect("evaluates");
        let rhs = eval_fun(&tiled, &[input]).expect("evaluates");
        assert_eq!(lhs, rhs, "n={n}, u={u}");
    }
}

/// 2D overlapped tiling (with and without local-memory staging) preserves
/// evaluator semantics.
#[test]
fn tile_2d_sound() {
    let mut rng = Rng::new(0x72);
    for case in 0..12 {
        let n = 6 + rng.below(12) as usize;
        let use_local = rng.below(2) == 1;
        let seed = rng.below(1000);
        let prog = sum2d_prog(n);
        let FunDecl::Lambda(l) = &prog else {
            unreachable!()
        };
        let tiles = valid_tiles(n + 2);
        assert!(!tiles.is_empty());
        let u = tiles[rng.below(1000) as usize % tiles.len()];
        let us = [ArithExpr::from(u), ArithExpr::from(u)];
        let Some(tiled_body) = tile_nd(&l.body, &us, use_local) else {
            continue;
        };
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body);

        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f32 - 48.0)
            .collect();
        let input = DataValue::from_f32s_2d(&data, n, n);
        let lhs = eval_fun(&prog, std::slice::from_ref(&input)).expect("evaluates");
        let rhs = eval_fun(&tiled, &[input]).expect("evaluates");
        assert_eq!(lhs, rhs, "case {case}: n={n}, u={u}, local={use_local}");
    }
}

/// The compiled pipeline agrees with the evaluator for random inputs —
/// codegen and the simulator implement the same semantics as the reference
/// interpreter.
#[test]
fn pipeline_agrees_with_evaluator() {
    let mut rng = Rng::new(0x73);
    let dev = VirtualDevice::new(DeviceProfile::mali_t628());
    for _ in 0..12 {
        let n = 6 + rng.below(18) as usize;
        let prog = jacobi1d_prog(n);
        let input_vec: Vec<f32> = (0..n)
            .map(|_| (rng.below(20_000) as f32 / 1000.0) - 10.0)
            .collect();
        let evaluated = eval_fun(&prog, &[DataValue::from_f32s(input_vec.iter().copied())])
            .expect("evaluates")
            .flatten_f32();

        let compiled = Pipeline::new(prog)
            .expect("typechecks")
            .explore()
            .expect("explores")
            .on(&dev)
            .with_config("global", &[("lx", 4)])
            .expect("compiles");
        let out = compiled.run(&[input_vec.into()]).expect("runs");
        assert_eq!(out.output.as_f32(), evaluated.as_slice());
    }
}

/// The tiled kernel and the untiled kernel produce identical buffers when
/// executed on the virtual device (not just under the evaluator).
#[test]
fn tiled_kernel_matches_untiled_on_device() {
    let n = 30usize; // padded 32: tile 4 (v=2) works
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).cos()).collect();

    let untiled = Pipeline::new(jacobi1d_prog(n))
        .expect("typechecks")
        .explore()
        .expect("explores")
        .on(&dev)
        .with_config("global", &[("lx", 8)])
        .expect("compiles");
    let a = untiled.run(&[input.clone().into()]).expect("runs");

    // The hand-derived rule application (tile_nd + explicit Wrg/Lcl
    // lowering) exercises the rewrite machinery below the pipeline.
    let prog = jacobi1d_prog(n);
    let FunDecl::Lambda(l) = &prog else {
        unreachable!()
    };
    let tiled_body = tile_nd(&l.body, &[ArithExpr::from(4)], true).expect("tiles");
    let tiled_prog = FunDecl::lambda(l.params.clone(), tiled_body);
    let lowered = lift::lift_rewrite::lowering::lower_grid(
        match &tiled_prog {
            FunDecl::Lambda(l) => &l.body,
            _ => unreachable!(),
        },
        &[
            lift::lift_core::pattern::MapKind::Wrg(0),
            lift::lift_core::pattern::MapKind::Lcl(0),
        ],
    );
    let lowered = lift::lift_rewrite::lowering::sequentialise(&lowered);
    let tiled_prog = FunDecl::lambda(l.params.clone(), lowered);
    let tiled = lift::lift_codegen::compile_kernel("tiled", &tiled_prog).expect("compiles");
    assert!(!tiled.locals.is_empty(), "local staging expected");

    // 15 tiles: (32-4)/2+1 = 15 groups of 4 work-items.
    let b = dev
        .run(
            &tiled,
            &[input.into()],
            lift::lift_oclsim::LaunchConfig::d1(15 * 4, 4),
        )
        .expect("runs");
    assert_eq!(a.output.as_f32(), b.output.as_f32());
    assert!(b.stats.local_accesses > 0);
    assert!(b.stats.barriers > 0);
}
