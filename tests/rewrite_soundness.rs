//! Property tests: the paper's rewrite rules are semantics-preserving for
//! *random* shapes, sizes and inputs — checked against both the reference
//! evaluator and the full codegen+simulator pipeline.

use proptest::prelude::*;

use lift::lift_arith::ArithExpr;
use lift::lift_codegen::compile_kernel;
use lift::lift_core::eval::{eval_fun, DataValue};
use lift::lift_core::prelude::*;
use lift::lift_oclsim::{DeviceProfile, LaunchConfig, VirtualDevice};
use lift::lift_rewrite::rules::{tile_1d, tile_2d};

fn jacobi1d_prog(n: usize) -> FunDecl {
    lam_named("A", Type::array(Type::f32(), n), |a| {
        let sum = lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        });
        map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    })
}

fn sum2d_prog(n: usize) -> FunDecl {
    lam_named("A", Type::array_2d(Type::f32(), n, n), |a| {
        let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), join(nbh))
        });
        lift::lift_core::ndim::map2(
            f,
            lift::lift_core::ndim::slide2(
                3,
                1,
                lift::lift_core::ndim::pad2(1, 1, Boundary::Clamp, a),
            ),
        )
    })
}

/// Valid (n, tile) pairs for a padded length `n + 2` with nbh (3, 1):
/// `v = u − 2` must divide `n + 2 − u`.
fn valid_tiles(padded: usize) -> Vec<usize> {
    (3..=padded)
        .filter(|u| {
            let v = u - 2;
            v > 0 && (padded - u).is_multiple_of(v)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1D overlapped tiling preserves evaluator semantics for random sizes,
    /// tile sizes and inputs.
    #[test]
    fn tile_1d_sound(
        n in 6usize..40,
        pick in 0usize..1000,
        values in proptest::collection::vec(-100.0f32..100.0, 40),
    ) {
        let prog = jacobi1d_prog(n);
        let FunDecl::Lambda(l) = &prog else { unreachable!() };
        let tiles = valid_tiles(n + 2);
        prop_assume!(!tiles.is_empty());
        let u = tiles[pick % tiles.len()];
        let tiled_body = tile_1d(&l.body, &ArithExpr::from(u), false);
        prop_assume!(tiled_body.is_some());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body.expect("checked"));

        let input = DataValue::from_f32s(values[..n].iter().copied());
        let lhs = eval_fun(&prog, std::slice::from_ref(&input)).expect("evaluates");
        let rhs = eval_fun(&tiled, &[input]).expect("evaluates");
        prop_assert_eq!(lhs, rhs);
    }

    /// 2D overlapped tiling (with and without local-memory staging)
    /// preserves evaluator semantics.
    #[test]
    fn tile_2d_sound(
        n in 6usize..18,
        pick in 0usize..1000,
        use_local in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let prog = sum2d_prog(n);
        let FunDecl::Lambda(l) = &prog else { unreachable!() };
        let tiles = valid_tiles(n + 2);
        prop_assume!(!tiles.is_empty());
        let u = tiles[pick % tiles.len()];
        let tiled_body = tile_2d(&l.body, &ArithExpr::from(u), use_local);
        prop_assume!(tiled_body.is_some());
        let tiled = FunDecl::lambda(l.params.clone(), tiled_body.expect("checked"));

        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f32 - 48.0)
            .collect();
        let input = DataValue::from_f32s_2d(&data, n, n);
        let lhs = eval_fun(&prog, std::slice::from_ref(&input)).expect("evaluates");
        let rhs = eval_fun(&tiled, &[input]).expect("evaluates");
        prop_assert_eq!(lhs, rhs);
    }

    /// The generated kernel agrees with the evaluator for random inputs —
    /// codegen and the simulator implement the same semantics as the
    /// reference interpreter.
    #[test]
    fn codegen_agrees_with_evaluator(
        n in 6usize..24,
        values in proptest::collection::vec(-10.0f32..10.0, 24),
    ) {
        let prog = jacobi1d_prog(n);
        let variants = lift::lift_rewrite::enumerate_variants(&prog);
        let global = variants.iter().find(|v| v.name == "global").expect("exists");
        let kernel = compile_kernel("k", &global.program).expect("compiles");

        let input_vec = values[..n].to_vec();
        let evaluated = eval_fun(
            &prog,
            &[DataValue::from_f32s(input_vec.iter().copied())],
        )
        .expect("evaluates")
        .flatten_f32();

        let dev = VirtualDevice::new(DeviceProfile::mali_t628());
        let out = dev
            .run(
                &kernel,
                &[input_vec.into()],
                LaunchConfig::d1(n.next_power_of_two(), 4),
            )
            .expect("runs");
        prop_assert_eq!(out.output.as_f32(), evaluated.as_slice());
    }
}

/// The tiled kernel and the untiled kernel produce identical buffers when
/// executed on the virtual device (not just under the evaluator).
#[test]
fn tiled_kernel_matches_untiled_on_device() {
    let n = 30usize; // padded 32: tile 4 (v=2) works
    let prog = jacobi1d_prog(n);
    let FunDecl::Lambda(l) = &prog else {
        unreachable!()
    };
    let variants = lift::lift_rewrite::enumerate_variants(&prog);
    let global = variants.iter().find(|v| v.name == "global").expect("exists");
    let untiled = compile_kernel("untiled", &global.program).expect("compiles");

    let tiled_body = tile_1d(&l.body, &ArithExpr::from(4), true).expect("tiles");
    let tiled_prog = FunDecl::lambda(l.params.clone(), tiled_body);
    let lowered = lift::lift_rewrite::lowering::lower_grid(
        match &tiled_prog {
            FunDecl::Lambda(l) => &l.body,
            _ => unreachable!(),
        },
        &[
            lift::lift_core::pattern::MapKind::Wrg(0),
            lift::lift_core::pattern::MapKind::Lcl(0),
        ],
    );
    let lowered = lift::lift_rewrite::lowering::sequentialise(&lowered);
    let tiled_prog = FunDecl::lambda(l.params.clone(), lowered);
    let tiled = compile_kernel("tiled", &tiled_prog).expect("compiles");
    assert!(!tiled.locals.is_empty(), "local staging expected");

    let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).cos()).collect();
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let a = dev
        .run(&untiled, &[input.clone().into()], LaunchConfig::d1(32, 8))
        .expect("runs");
    // 15 tiles of (4-3+1)*... = (32-4)/2+1 = 15 groups.
    let b = dev
        .run(&tiled, &[input.into()], LaunchConfig::d1(15 * 4, 4))
        .expect("runs");
    assert_eq!(a.output.as_f32(), b.output.as_f32());
    assert!(b.stats.local_accesses > 0);
    assert!(b.stats.barriers > 0);
}
