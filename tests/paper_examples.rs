//! The paper's worked examples, verbatim, through the public API:
//! Listing 1/2 (3-point Jacobi), the §3.4 `pad2`/`slide2` expansions, the
//! §4.1 tiling constraint, and the §3.5 acoustic structure.

use lift::lift_core::eval::{eval_fun, DataValue};
use lift::lift_core::ndim::{pad2, slide2};
use lift::lift_core::prelude::*;

/// Listing 1 (C) vs Listing 2 (Lift): the same 3-point sum.
#[test]
fn listing1_equals_listing2() {
    let n = 10usize;
    let a: Vec<f32> = (0..n).map(|i| (i * i % 13) as f32).collect();

    // Listing 1, transcribed:
    let mut c_result = vec![0.0f32; n];
    for i in 0..n as i64 {
        let mut sum = 0.0;
        for j in -1..=1 {
            let mut pos = i + j;
            pos = if pos < 0 { 0 } else { pos };
            pos = if pos > n as i64 - 1 {
                n as i64 - 1
            } else {
                pos
            };
            sum += a[pos as usize];
        }
        c_result[i as usize] = sum;
    }

    // Listing 2:
    let stencil = lam_named("A", Type::array(Type::f32(), n), |arr| {
        let sum_nbh = lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        });
        map(sum_nbh, slide(3, 1, pad(1, 1, Boundary::Clamp, arr)))
    });
    let lift_result = eval_fun(&stencil, &[DataValue::from_f32s(a)])
        .expect("evaluates")
        .flatten_f32();

    assert_eq!(lift_result, c_result);
}

/// §3.4's pad2 worked example:
/// `pad2(1, 1, clamp, [[a, b], [c, d]])` = the 4×4 matrix with every border
/// doubled.
#[test]
fn pad2_worked_example() {
    let prog = lam_named("G", Type::array_2d(Type::f32(), 2, 2), |g| {
        pad2(1, 1, Boundary::Clamp, g)
    });
    let (a, b, c, d) = (1.0, 2.0, 3.0, 4.0);
    let out = eval_fun(&prog, &[DataValue::from_f32s_2d(&[a, b, c, d], 2, 2)])
        .expect("evaluates")
        .flatten_f32();
    #[rustfmt::skip]
    let expected = vec![
        a, a, b, b,
        a, a, b, b,
        c, c, d, d,
        c, c, d, d,
    ];
    assert_eq!(out, expected);
}

/// §3.4's slide2 worked example on [[a..i]]: four 2×2 neighbourhoods.
#[test]
fn slide2_worked_example() {
    let prog = lam_named("G", Type::array_2d(Type::f32(), 3, 3), |g| slide2(2, 1, g));
    let vals: Vec<f32> = (1..=9).map(|v| v as f32).collect(); // a..i
    let out = eval_fun(&prog, &[DataValue::from_f32s_2d(&vals, 3, 3)])
        .expect("evaluates")
        .flatten_f32();
    // [[a,b],[d,e]], [[b,c],[e,f]], [[d,e],[g,h]], [[e,f],[h,i]]
    #[rustfmt::skip]
    let expected = vec![
        1.0, 2.0, 4.0, 5.0,
        2.0, 3.0, 5.0, 6.0,
        4.0, 5.0, 7.0, 8.0,
        5.0, 6.0, 8.0, 9.0,
    ];
    assert_eq!(out, expected);
}

/// §4.1: "the difference between the size and step has to match the
/// difference of u and v" — for the 3-point Jacobi with u = 5, v must be 3,
/// and then both sides produce the same number of neighbourhoods.
#[test]
fn tiling_parameter_constraint() {
    use lift::lift_arith::ArithExpr;
    let n = 18usize;
    let prog = lam_named("A", Type::array(Type::f32(), n), |a| {
        let sum = lam(Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        });
        map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    });
    let FunDecl::Lambda(l) = &prog else {
        unreachable!()
    };
    let tiled =
        lift::lift_rewrite::rules::tile_nd(&l.body, &[ArithExpr::from(5)], false).expect("tiles");
    // Type preservation implies equal neighbourhood counts on both sides.
    assert_eq!(typecheck(&l.body).unwrap(), typecheck(&tiled).unwrap());
}

/// §3.5: the acoustic expression zips three 3D structures (point grid, slid
/// neighbourhoods, generated mask) and the program typechecks to the grid
/// shape.
#[test]
fn acoustic_structure_typechecks() {
    let bench = lift::lift_stencils::by_name("Acoustic");
    let prog = bench.program(&[8, 10, 12]);
    let ty = typecheck_fun(&prog).expect("typechecks");
    assert_eq!(ty.to_string(), "[[[f32]_12]_10]_8");
}

/// The dampening/constant boundary of §3.2: `padValue` produces the
/// constant outside the array.
#[test]
fn pad_value_constant_boundary() {
    let prog = lam_named("A", Type::array(Type::f32(), 3), |a| {
        pad_value(2, 1, 9.5f32, a)
    });
    let out = eval_fun(&prog, &[DataValue::from_f32s([1.0, 2.0, 3.0])])
        .expect("evaluates")
        .flatten_f32();
    assert_eq!(out, vec![9.5, 9.5, 1.0, 2.0, 3.0, 9.5]);
}

/// Boundary re-indexing variants from §3.2 (clamp shown in the paper;
/// mirror and wrap are "similarly defined").
#[test]
fn boundary_families() {
    for (b, expected) in [
        (Boundary::Clamp, vec![1.0, 1.0, 2.0, 3.0, 3.0]),
        (Boundary::Mirror, vec![1.0, 1.0, 2.0, 3.0, 3.0]),
        (Boundary::Wrap, vec![3.0, 1.0, 2.0, 3.0, 1.0]),
    ] {
        let prog = lam_named("A", Type::array(Type::f32(), 3), move |a| pad(1, 1, b, a));
        let out = eval_fun(&prog, &[DataValue::from_f32s([1.0, 2.0, 3.0])])
            .expect("evaluates")
            .flatten_f32();
        assert_eq!(out, expected, "{b:?}");
    }
}
