//! Differential suite for the two simulator engines.
//!
//! The bytecode-plan executor is only allowed to be *faster* than the
//! tree-walking reference interpreter — never different. This suite runs
//! every Table-1 benchmark × explored variant × device profile through
//! both engines and asserts that the outputs, every [`KernelStats`]
//! counter and the modeled time are **bit-identical** (`f64::to_bits` on
//! times, structural equality everywhere else). It also pins the
//! plan-compile error reporting contract (satellite of the plan work):
//! unbound variables and provable type mismatches surface at plan-compile
//! time with the kernel name and statement context.

use lift_codegen::clike::{AddressSpace, CExpr, CStmt, CType, Kernel, KernelParam, VarRef};
use lift_driver::Pipeline;
use lift_oclsim::{BufferData, DeviceProfile, Plan, Rotation, SimEngine, SimError, VirtualDevice};
use lift_rewrite::Tunable;
use lift_stencils::suite;

/// Compact grid sizes per rank: big enough to exercise multi-group
/// launches, boundary handling and non-square strides, small enough that
/// the tree engine stays affordable across the whole matrix.
fn diff_sizes(dims: usize) -> Vec<usize> {
    match dims {
        1 => vec![128],
        2 => vec![48, 40],
        _ => vec![12, 16, 20],
    }
}

/// A valid configuration for a variant: the first usable candidate per
/// tunable (mirroring the tuner's degenerate-tile filter) plus small
/// launch sizes.
fn variant_config(tunables: &[Tunable], dims: usize) -> Option<Vec<(String, i64)>> {
    let mut cfg: Vec<(String, i64)> = Vec::new();
    for t in tunables {
        let cands = t.candidates(64);
        let v = match t {
            Tunable::TileSize { nbh_size, .. } => cands.into_iter().find(|u| *u >= nbh_size + 3)?,
            Tunable::CoarsenFactor { .. } => cands.into_iter().next()?,
        };
        cfg.push((t.var().to_string(), v));
    }
    cfg.push(("lx".into(), 8));
    if dims >= 2 {
        cfg.push(("ly".into(), 4));
    }
    if dims >= 3 {
        cfg.push(("lz".into(), 2));
    }
    Some(cfg)
}

/// Every Table-1 benchmark × variant × device: both engines agree
/// bit-for-bit on outputs, stats and modeled times.
#[test]
fn every_benchmark_variant_device_is_bit_identical_across_engines() {
    let devices: Vec<VirtualDevice> = DeviceProfile::all()
        .into_iter()
        .map(VirtualDevice::new)
        .collect();
    let mut compared = 0usize;
    for bench in suite() {
        let sizes = diff_sizes(bench.dims);
        let variants = Pipeline::from_benchmark(&bench, &sizes)
            .expect("pipeline")
            .explore()
            .expect("explores");
        let names: Vec<String> = variants.names().iter().map(|s| s.to_string()).collect();
        let inputs: Vec<BufferData> = bench
            .gen_inputs(&sizes, 7)
            .into_iter()
            .map(BufferData::F32)
            .collect();
        for dev in &devices {
            for name in &names {
                let variant = variants.get(name).expect("listed variant");
                let Some(cfg) = variant_config(&variant.tunables, variant.dims) else {
                    continue;
                };
                let cfg_refs: Vec<(&str, i64)> =
                    cfg.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let compiled = match variants.clone().on(dev).with_config(name, &cfg_refs) {
                    Ok(c) => c,
                    // Some (variant, device) pairs are legitimately
                    // unbuildable (local memory over budget, work-group
                    // limits); the sweep skips them, so do we.
                    Err(_) => continue,
                };
                let tree = dev.run_with_engine(
                    compiled.kernel(),
                    &inputs,
                    compiled.launch(),
                    SimEngine::Tree,
                );
                let plan = dev.run_with_engine(
                    compiled.kernel(),
                    &inputs,
                    compiled.launch(),
                    SimEngine::Plan,
                );
                let label = format!("{}/{name} on {}", bench.name, dev.profile().name);
                match (tree, plan) {
                    (Ok(t), Ok(p)) => {
                        // Anything that runs clean must also *prove* clean:
                        // the static verifier may never cry wolf on an
                        // executed benchmark kernel.
                        let findings = compiled.verify().expect("verifier runs");
                        assert!(
                            findings.is_empty(),
                            "verifier findings on executed kernel {label}: {findings:?}"
                        );
                        assert_eq!(t.output, p.output, "outputs diverge for {label}");
                        assert_eq!(t.stats, p.stats, "stats diverge for {label}");
                        assert_eq!(
                            t.time_s.to_bits(),
                            p.time_s.to_bits(),
                            "modeled times diverge for {label}: {} vs {}",
                            t.time_s,
                            p.time_s
                        );
                        compared += 1;
                    }
                    (Err(te), Err(pe)) => {
                        // Same fault class either way; the plan engine may
                        // report it from a different lane of the same
                        // statement (op-major vs item-major evaluation).
                        assert_eq!(
                            std::mem::discriminant(&te),
                            std::mem::discriminant(&pe),
                            "fault classes diverge for {label}: {te} vs {pe}"
                        );
                    }
                    (t, p) => panic!("one engine faulted for {label}: tree={t:?} plan={p:?}"),
                }
            }
        }
    }
    assert!(
        compared >= 100,
        "expected a broad comparison matrix, only {compared} cells ran"
    );
}

/// Multi-step (host-rotated) execution agrees across engines too.
#[test]
fn iterated_runs_are_bit_identical_across_engines() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "Jacobi2D5pt")
        .expect("suite benchmark");
    let sizes = diff_sizes(2);
    let compiled = Pipeline::from_benchmark(&bench, &sizes)
        .expect("pipeline")
        .explore()
        .expect("explores")
        .on(&VirtualDevice::new(DeviceProfile::k20c()))
        .with_config("global", &[("lx", 8), ("ly", 4)])
        .expect("compiles");
    let inputs: Vec<BufferData> = bench
        .gen_inputs(&sizes, 11)
        .into_iter()
        .map(BufferData::F32)
        .collect();
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let mut outs = Vec::new();
    for engine in [SimEngine::Tree, SimEngine::Plan] {
        // Drive the per-step engine explicitly through run_with_engine and
        // rotate on the host, mirroring run_iterated's SingleBuffer policy.
        let mut state = inputs.clone();
        let mut total = 0.0f64;
        for _ in 0..3 {
            let out = dev
                .run_with_engine(compiled.kernel(), &state, compiled.launch(), engine)
                .expect("runs");
            total += out.time_s;
            state[0] = out.output.clone();
        }
        outs.push((state.swap_remove(0), total));
    }
    assert_eq!(outs[0].0, outs[1].0, "iterated outputs diverge");
    assert_eq!(
        outs[0].1.to_bits(),
        outs[1].1.to_bits(),
        "iterated modeled times diverge"
    );

    // And the public planned entry point matches the engine default.
    let it = compiled
        .run_iterated(&inputs, 3, Rotation::SingleBuffer)
        .expect("runs");
    assert_eq!(it.output, outs[1].0);
}

fn buf(name: &str, len: usize, is_output: bool) -> KernelParam {
    KernelParam {
        var: VarRef::fresh(name),
        elem: CType::Float,
        len,
        is_output,
    }
}

/// An unbound variable is rejected at plan-compile time, naming the kernel
/// and the statement, with the original fault as the `source()`.
#[test]
fn plan_compile_reports_unbound_variables_with_context() {
    let a = buf("A", 8, false);
    let out = buf("out", 8, true);
    let ghost = VarRef::fresh("ghost");
    let kernel = Kernel {
        name: "broken_kernel".into(),
        body: vec![CStmt::Store {
            buf: out.var.clone(),
            space: AddressSpace::Global,
            idx: CExpr::Int(0),
            value: CExpr::Var(ghost),
        }],
        params: vec![a, out],
        locals: vec![],
        user_funs: vec![],
    };
    let err = Plan::compile(&kernel).expect_err("must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("broken_kernel") && msg.contains("store to `out`"),
        "context missing from: {msg}"
    );
    assert!(
        matches!(&err, SimError::PlanCompile { cause, .. }
            if matches!(**cause, SimError::UnboundVariable(_))),
        "wrong fault: {err:?}"
    );
    // The cause chains through std::error::Error::source.
    let src = std::error::Error::source(&err).expect("has a source");
    assert!(src.to_string().contains("ghost"), "source was: {src}");
}

/// A provable type mismatch (float literal as a buffer index) is rejected
/// at plan-compile time instead of mid-simulation.
#[test]
fn plan_compile_reports_provable_type_mismatches() {
    let a = buf("A", 8, false);
    let out = buf("out", 8, true);
    let kernel = Kernel {
        name: "bad_index".into(),
        body: vec![CStmt::Store {
            buf: out.var.clone(),
            space: AddressSpace::Global,
            idx: CExpr::Float(1.5),
            value: CExpr::Int(0),
        }],
        params: vec![a, out],
        locals: vec![],
        user_funs: vec![],
    };
    let err = Plan::compile(&kernel).expect_err("must be rejected");
    assert!(
        matches!(&err, SimError::PlanCompile { cause, .. }
            if matches!(**cause, SimError::TypeMismatch(_))),
        "wrong fault: {err:?}"
    );
    assert!(err.to_string().contains("bad_index"), "context: {err}");
}
