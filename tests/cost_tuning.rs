//! The cost-model tuning contract: model guidance (warm-start + dominated-
//! config pruning) changes how *fast* tuning converges, never *what* it
//! finds — and stays bit-deterministic across thread counts while at it.

use std::sync::Arc;

use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
use lift::{CostModel, KernelCache, Pipeline, TuneOptions, TunedVariant};

fn fingerprint(v: &TunedVariant) -> (String, String, Vec<(String, i64)>) {
    (
        v.name.clone(),
        // Scores must be *bit*-identical, not approximately equal.
        format!("{:x}", v.time_s.to_bits()),
        v.config.clone(),
    )
}

fn tune(
    dev: &VirtualDevice,
    bench: &str,
    sizes: &[usize],
    setting: &str,
    threads: usize,
) -> lift::lift_driver::BenchResult {
    Pipeline::for_benchmark(bench, sizes)
        .expect("benchmark exists")
        .explore()
        .expect("explores")
        .on(dev)
        .with_cache(Arc::new(KernelCache::new()))
        .tune_full(
            TuneOptions::evaluations(10)
                .with_seed(7)
                .with_threads(threads)
                .with_cost_prune(setting),
        )
        .expect("tunes")
        .report
}

/// The safety half of the contract: with the model on (`k = 1.0`, the
/// default) every variant's best is identical — score bits, configuration
/// and winner — to the `LIFT_COST_PRUNE=off` search, on every device
/// profile. `k = 1.0` can only prune configurations whose exact estimate
/// matches or exceeds the incumbent's — a worse one loses on score, an
/// exactly-tied one loses the (score, proposal-index) tie-break — and for
/// launch-determined kernels the exact estimate *is* the simulated score.
#[test]
fn pruned_tuning_finds_the_unpruned_incumbent() {
    for profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(profile);
        for (bench, sizes) in [("Jacobi2D5pt", vec![18usize, 18]), ("Heat", vec![8, 8, 8])] {
            let guided = tune(&dev, bench, &sizes, "1.0", 1);
            let unguided = tune(&dev, bench, &sizes, "off", 1);
            assert_eq!(
                fingerprint(&guided.winner),
                fingerprint(&unguided.winner),
                "{bench} on {}: model guidance changed the winner",
                dev.profile().name
            );
            assert_eq!(
                guided.all.iter().map(fingerprint).collect::<Vec<_>>(),
                unguided.all.iter().map(fingerprint).collect::<Vec<_>>(),
                "{bench} on {}: model guidance changed a per-variant best",
                dev.profile().name
            );
            // The unguided run never consults the model.
            let unguided_pruned: usize = unguided.all.iter().map(|v| v.pruned_model).sum();
            assert_eq!(unguided_pruned, 0, "off means off");
        }
    }
}

/// The determinism half: prune decisions are a pure function of the
/// proposal stream (single-proposal decision windows against the freshest
/// incumbent's estimate), so any thread count reproduces the sequential
/// run exactly — including the prune counters and the evals-to-best
/// metric.
#[test]
fn model_guided_tuning_is_bit_identical_across_thread_counts() {
    let dev = VirtualDevice::new(DeviceProfile::hd7970());
    let full = |threads: usize| {
        tune(&dev, "Jacobi2D5pt", &[18, 18], "1.0", threads)
            .all
            .iter()
            .map(|v| {
                (
                    fingerprint(v),
                    v.evaluations,
                    v.evals_to_best,
                    v.pruned_verify,
                    v.pruned_model,
                    v.sims,
                )
            })
            .collect::<Vec<_>>()
    };
    let sequential = full(1);
    for threads in [2, 8] {
        assert_eq!(full(threads), sequential, "threads={threads} diverged");
    }
}

/// Warm-start earns its keep: with an exact model the winning score is
/// scored no later than in the unguided search, and the guided search
/// spends strictly fewer simulator evaluations whenever it prunes.
#[test]
fn model_guidance_never_slows_convergence() {
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let guided = tune(&dev, "Jacobi2D5pt", &[18, 18], "1.0", 1);
    let unguided = tune(&dev, "Jacobi2D5pt", &[18, 18], "off", 1);
    assert!(
        guided.winner.evals_to_best <= unguided.winner.evals_to_best,
        "warm-start must not defer the winner: {} vs {}",
        guided.winner.evals_to_best,
        unguided.winner.evals_to_best
    );
    let sims = |r: &lift::lift_driver::BenchResult| -> usize { r.all.iter().map(|v| v.sims).sum() };
    assert!(
        sims(&guided) <= sims(&unguided),
        "pruning must not add simulator work: {} vs {}",
        sims(&guided),
        sims(&unguided)
    );
}

/// The `LIFT_COST_PRUNE` syntax: `off` and `0` disable, a positive float
/// is the threshold, anything else falls back to the safe default.
#[test]
fn cost_prune_setting_parses_defensively() {
    let def = CostModel::default();
    assert!(def.enabled && def.k == 1.0);
    for off in ["off", "0", " OFF ", "0.0"] {
        assert!(
            !CostModel::from_setting(Some(off)).enabled,
            "`{off}` must disable the model"
        );
    }
    let k2 = CostModel::from_setting(Some("2.5"));
    assert!(k2.enabled && k2.k == 2.5);
    for junk in ["", "nan", "-1", "inf", "fast"] {
        let m = CostModel::from_setting(Some(junk));
        assert!(
            m.enabled && m.k == 1.0,
            "`{junk}` must fall back to the default"
        );
    }
    assert!(CostModel::from_setting(None).enabled);
    assert!(!CostModel::off().enabled);
}
