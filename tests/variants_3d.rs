//! Rewrite soundness and cache behaviour for the 3D search space: every
//! enumerated variant of every 3D Table-1 benchmark — including the
//! rank-generic `tiled`/`tiled-local` derivations with independent
//! per-dimension tile sizes — must agree with the reference evaluator, and
//! the 3D kernels must round-trip through the kernel cache exactly like
//! the 1D/2D ones.

use std::sync::Arc;

use lift::lift_core::eval::{eval_fun, DataValue};
use lift::lift_oclsim::{BufferData, DeviceProfile, VirtualDevice};
use lift::lift_rewrite::strategy::{bind_tunables, enumerate_variants};
use lift::{KernelCache, Pipeline};

fn tiny(sizes: &[usize]) -> Vec<usize> {
    sizes.iter().map(|s| (*s).clamp(6, 8)).collect()
}

fn as_data(input: &[f32], sizes: &[usize]) -> DataValue {
    match sizes.len() {
        1 => DataValue::from_f32s(input.iter().copied()),
        2 => DataValue::from_f32s_2d(input, sizes[0], sizes[1]),
        3 => DataValue::from_f32s_3d(input, sizes[0], sizes[1], sizes[2]),
        _ => unreachable!(),
    }
}

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-3 * y.abs().max(1.0))
}

/// Every enumerated variant of every 3D benchmark — with its tunables
/// bound to the smallest valid values — evaluates to the golden reference
/// under the semantic oracle. This is the acceptance gate for the
/// rank-generic tiling path: a mis-derived 3D rewrite cannot hide behind
/// the tuner discarding it.
#[test]
fn every_3d_variant_agrees_with_the_reference_evaluator() {
    for bench in lift::lift_stencils::bench3d::benchmarks() {
        let sizes = tiny(bench.small);
        let inputs = bench.gen_inputs(&sizes, 17);
        let golden = bench.golden(&inputs, &sizes);
        let args: Vec<DataValue> = inputs.iter().map(|i| as_data(i, &sizes)).collect();

        let variants = enumerate_variants(&bench.program(&sizes));
        let names: Vec<&str> = variants.iter().map(|v| v.name.as_str()).collect();
        for want in ["tiled", "tiled-local", "tiled-unroll", "tiled-local-unroll"] {
            assert!(
                names.contains(&want),
                "{}: missing variant {want}, got {names:?}",
                bench.name
            );
        }

        for v in &variants {
            // Per-dimension tile tunables for every tiled 3D variant.
            if v.tiled {
                let vars: Vec<&str> = v.tunables.iter().map(|t| t.var()).collect();
                assert_eq!(
                    vars,
                    vec!["TS0", "TS1", "TS2"],
                    "{}/{}: expected independent per-dimension tile sizes",
                    bench.name,
                    v.name
                );
            }
            let values: Vec<(String, i64)> = v
                .tunables
                .iter()
                .map(|t| {
                    let c = t.candidates(64);
                    assert!(!c.is_empty(), "{}/{}: no valid value", bench.name, v.name);
                    (t.var().to_string(), c[0])
                })
                .collect();
            let bound = if values.is_empty() {
                v.program.clone()
            } else {
                bind_tunables(v, &values)
                    .unwrap_or_else(|| panic!("{}/{}: binding failed", bench.name, v.name))
            };
            let out = eval_fun(&bound, &args)
                .unwrap_or_else(|e| panic!("{}/{}: does not evaluate: {e}", bench.name, v.name));
            assert!(
                close(&out.flatten_f32(), &golden),
                "{}/{} (bound {values:?}): diverges from the golden reference",
                bench.name,
                v.name
            );
        }
    }
}

/// Non-cubic 3D grids tile with genuinely independent per-dimension tile
/// sizes: Hotspot3D's 8×64×64 shape admits values for `TS1`/`TS2` that are
/// invalid for `TS0`.
#[test]
fn non_cubic_3d_grids_tile_per_dimension() {
    let bench = lift::lift_stencils::by_name("Hotspot3D");
    let sizes = [6usize, 10, 14]; // padded 8×12×16
    let variants = enumerate_variants(&bench.program(&sizes));
    let tiled = variants.iter().find(|v| v.name == "tiled").expect("tiled");
    let domains: Vec<Vec<i64>> = tiled.tunables.iter().map(|t| t.candidates(64)).collect();
    assert_eq!(domains[0], vec![3, 4, 5, 8]); // len 8
    assert_eq!(domains[1], vec![3, 4, 7, 12]); // len 12
    assert_eq!(domains[2], vec![3, 4, 9, 16]); // len 16
                                               // An asymmetric assignment binds and still matches the evaluator.
    let inputs = bench.gen_inputs(&sizes, 5);
    let golden = bench.golden(&inputs, &sizes);
    let args: Vec<DataValue> = inputs.iter().map(|i| as_data(i, &sizes)).collect();
    let bound = bind_tunables(
        tiled,
        &[("TS0".into(), 5), ("TS1".into(), 7), ("TS2".into(), 4)],
    )
    .expect("asymmetric tiles bind");
    let out = eval_fun(&bound, &args).expect("evaluates");
    assert!(close(&out.flatten_f32(), &golden));
}

/// The cache round trip for a 3D tiled-local kernel on every device
/// profile: two identical sessions share one compilation, bit-exactly.
#[test]
fn tiled_3d_kernel_round_trips_through_the_cache_on_every_device() {
    let cache = Arc::new(KernelCache::new());
    let bench = lift::lift_stencils::by_name("Heat");
    let sizes = [6usize, 6, 6];
    let raw = bench.gen_inputs(&sizes, 29);
    let golden = bench.golden(&raw, &sizes);
    let inputs: Vec<BufferData> = raw.into_iter().map(BufferData::F32).collect();
    let params: [(&str, i64); 6] = [
        ("TS0", 4),
        ("TS1", 4),
        ("TS2", 4),
        ("lx", 2),
        ("ly", 2),
        ("lz", 2),
    ];

    for profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(profile);
        let session = |cache: Arc<KernelCache>| {
            Pipeline::from_benchmark(&bench, &sizes)?
                .explore()?
                .on(&dev)
                .with_cache(cache)
                .with_config("tiled-local", &params)
        };
        let first = session(cache.clone()).expect("first session compiles");
        assert!(first.tiled() && first.local_mem());
        let compiles_after_first = cache.stats().compiles;
        let out1 = first.run(&inputs).expect("first run");
        assert!(
            close(out1.output.as_f32(), &golden),
            "{}: tiled-local diverges from golden",
            dev.profile().name
        );
        assert!(out1.stats.local_accesses > 0, "local staging expected");
        assert!(out1.stats.barriers > 0, "work-group barriers expected");

        // Second session: zero recompiles, the very same kernel object.
        let second = session(cache.clone()).expect("second session");
        assert_eq!(
            cache.stats().compiles,
            compiles_after_first,
            "{}: second session recompiled",
            dev.profile().name
        );
        assert!(Arc::ptr_eq(first.kernel(), second.kernel()));
        let out2 = second.run(&inputs).expect("second run");
        assert_eq!(out1.output.as_f32(), out2.output.as_f32());
    }
    let stats = cache.stats();
    assert!(stats.hits >= 3 && stats.compiles == 3, "sanity: {stats:?}");
}
